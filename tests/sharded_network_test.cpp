// The sharded LOCAL runtime: partitions must be well-formed, the shard plan
// must be a per-shard bijection, and — the load-bearing contract — the
// sharded network must reproduce the single-arena network BIT FOR BIT (same
// trajectory, same MessageStats) at every tested shard count and thread
// count, for every node-program table.  Also covers the 32-bit compact
// index option, the memory report, the facade's num_shards path with its
// named validation errors, and a ProcessTransport round-trip smoke test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "chains/engine.hpp"
#include "chains/init.hpp"
#include "core/sampler.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "local/csp_node_programs.hpp"
#include "local/luby_mis.hpp"
#include "local/node_programs.hpp"
#include "local/sharding.hpp"
#include "mrf/models.hpp"

namespace lsample::local {
namespace {

template <typename F>
std::string thrown_message(F&& f) {
  try {
    f();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

std::vector<graph::GraphPtr> test_graphs() {
  util::Rng rng(17);
  return {graph::make_torus(6, 6), graph::make_random_regular(30, 4, rng),
          graph::make_path(13)};
}

// ---------------------------------------------------------------------------
// Partition invariants
// ---------------------------------------------------------------------------

TEST(ShardedPartition, InvariantsAcrossGraphsAndShardCounts) {
  for (const auto& g : test_graphs()) {
    const int n = g->num_vertices();
    for (int S : {1, 2, 4, 7}) {
      graph::PartitionOptions opt;
      opt.num_shards = S;
      const graph::Partition part = graph::make_partition(*g, opt);
      ASSERT_EQ(part.num_shards, S);
      ASSERT_EQ(static_cast<int>(part.shard_of.size()), n);
      ASSERT_EQ(static_cast<int>(part.shards.size()), S);
      // The shard lists are ascending, disjoint, and cover [0, n).
      std::set<int> seen;
      for (int s = 0; s < S; ++s) {
        ASSERT_FALSE(part.shards[s].empty()) << "empty shard " << s;
        ASSERT_TRUE(std::is_sorted(part.shards[s].begin(),
                                   part.shards[s].end()));
        for (int v : part.shards[s]) {
          EXPECT_EQ(part.shard_of[static_cast<std::size_t>(v)], s);
          EXPECT_TRUE(seen.insert(v).second) << "vertex " << v << " twice";
        }
      }
      EXPECT_EQ(static_cast<int>(seen.size()), n);
      const graph::PartitionQuality q = graph::partition_quality(*g, part);
      EXPECT_EQ(q.cut_edges + q.internal_edges, g->num_edges());
      EXPECT_GE(q.min_shard_size, 1);
      if (S == 1) {
        EXPECT_EQ(q.cut_edges, 0);
        EXPECT_DOUBLE_EQ(q.balance, 1.0);
      }
      EXPECT_FALSE(graph::describe(q).empty());
    }
  }
}

TEST(ShardedPartition, RefinementDoesNotWorsenTheContiguousCut) {
  util::Rng rng(5);
  const auto g = graph::make_random_regular(48, 6, rng);
  graph::PartitionOptions raw;
  raw.num_shards = 4;
  raw.refine = false;
  graph::PartitionOptions refined = raw;
  refined.refine = true;
  const auto q_raw = graph::partition_quality(*g, graph::make_partition(*g, raw));
  const auto q_ref =
      graph::partition_quality(*g, graph::make_partition(*g, refined));
  EXPECT_LE(q_ref.cut_edges, q_raw.cut_edges);
}

TEST(ShardedPartition, NamedValidationErrors) {
  const auto g = graph::make_cycle(8);
  graph::PartitionOptions zero;
  zero.num_shards = 0;
  EXPECT_NE(thrown_message([&] { (void)graph::make_partition(*g, zero); })
                .find("num_shards must be at least 1"),
            std::string::npos);
  graph::PartitionOptions too_many;
  too_many.num_shards = 9;
  EXPECT_NE(thrown_message([&] { (void)graph::make_partition(*g, too_many); })
                .find("must not exceed the number of vertices"),
            std::string::npos);
}

TEST(ShardedPartition, AssignmentRoundTripRebuildsTheSameShards) {
  const auto g = graph::make_torus(5, 5);
  graph::PartitionOptions opt;
  opt.num_shards = 3;
  const graph::Partition part = graph::make_partition(*g, opt);
  const graph::Partition again =
      graph::partition_from_assignment(part.num_shards, part.shard_of);
  EXPECT_EQ(again.shard_of, part.shard_of);
  EXPECT_EQ(again.shards, part.shards);
}

// ---------------------------------------------------------------------------
// Shard plan invariants
// ---------------------------------------------------------------------------

TEST(ShardedPlan, TranslationsArePerShardBijections) {
  const auto g = graph::make_torus(6, 6);
  graph::PartitionOptions popt;
  popt.num_shards = 3;
  const ShardPlan plan =
      make_shard_plan(*g, graph::make_partition(*g, popt));
  const auto off = g->csr_offsets();
  const auto nbr = g->neighbors_flat();
  const auto slots = static_cast<std::int64_t>(g->incident_edges_flat().size());
  ASSERT_EQ(std::accumulate(plan.owned_slots.begin(), plan.owned_slots.end(),
                            std::int64_t{0}),
            slots);
  ASSERT_EQ(std::accumulate(plan.halo_slots.begin(), plan.halo_slots.end(),
                            std::int64_t{0}),
            plan.cut_slots);
  ASSERT_EQ(static_cast<std::int64_t>(plan.out_local64.size()), slots);
  // Every shard's arena indices [0, owned + halo) are hit exactly once: by
  // out_local for the slots its vertices own, by in_local for its halo.
  for (int s = 0; s < plan.num_shards(); ++s) {
    std::vector<char> hit(static_cast<std::size_t>(plan.owned_slots[s] +
                                                   plan.halo_slots[s]),
                          0);
    for (int v : plan.part.shards[s])
      for (int p = off[v]; p < off[v + 1]; ++p) {
        const auto lp = static_cast<std::size_t>(plan.out_local64[p]);
        ASSERT_LT(lp, static_cast<std::size_t>(plan.owned_slots[s]));
        ASSERT_EQ(hit[lp], 0);
        hit[lp] = 1;
      }
    for (std::int64_t p = 0; p < slots; ++p) {
      if (plan.part.shard_of[static_cast<std::size_t>(nbr[p])] != s) continue;
      const auto lp = static_cast<std::size_t>(plan.in_local64[p]);
      ASSERT_LT(lp, hit.size());
      if (lp >= static_cast<std::size_t>(plan.owned_slots[s])) {
        ASSERT_EQ(hit[lp], 0);  // halo region: first (and only) reader
        hit[lp] = 1;
      }
    }
    EXPECT_TRUE(std::all_of(hit.begin(), hit.end(),
                            [](char c) { return c == 1; }));
  }
  // send_slots lists are ascending and their total is the directed cut.
  std::int64_t listed = 0;
  for (const auto& row : plan.send_slots)
    for (const auto& list : row) {
      EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
      listed += static_cast<std::int64_t>(list.size());
    }
  EXPECT_EQ(listed, plan.cut_slots);
}

TEST(ShardedPlan, SingleShardIsTheIdentityFastPath) {
  const auto g = graph::make_cycle(10);
  const ShardPlan plan = make_shard_plan(*g, graph::make_partition(*g, {}));
  EXPECT_EQ(plan.cut_slots, 0);
  EXPECT_TRUE(plan.out_local64.empty());
  EXPECT_TRUE(plan.in_local64.empty());
  EXPECT_EQ(plan.translation_bytes(), 0);
}

TEST(ShardedPlan, CompactIndexLimitIsANamedError) {
  const auto g = graph::make_torus(4, 4);
  graph::PartitionOptions popt;
  popt.num_shards = 2;
  ShardPlanOptions small;
  small.compact_indices = true;
  small.compact_index_limit = 4;  // any shard needs far more local slots
  const std::string msg = thrown_message([&] {
    (void)make_shard_plan(*g, graph::make_partition(*g, popt), small);
  });
  EXPECT_NE(msg.find("compact-index limit"), std::string::npos) << msg;
  EXPECT_NE(msg.find("32-bit"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// Bitwise determinism: sharded == unsharded, at any (shards, threads)
// ---------------------------------------------------------------------------

struct Reference {
  mrf::Config outputs;
  MessageStats stats;
};

template <typename MakeSharded>
void expect_sharded_bitwise_equal(const Reference& ref, std::int64_t rounds,
                                  MakeSharded&& make_sharded) {
  for (int S : {1, 2, 4}) {
    for (int threads : {1, 2, 4}) {
      ShardedNetwork::Options opt;
      opt.partition.num_shards = S;
      ShardedNetwork net = make_sharded(std::move(opt));
      std::optional<chains::ParallelEngine> engine;
      if (threads > 1) {
        engine.emplace(threads);
        net.set_engine(&*engine);
      }
      net.run_rounds(rounds);
      EXPECT_EQ(net.outputs(), ref.outputs)
          << S << " shards, " << threads << " threads";
      EXPECT_TRUE(net.stats() == ref.stats)
          << "MessageStats changed at " << S << " shards, " << threads
          << " threads";
      const HaloStats& halo = net.halo_stats();
      EXPECT_EQ(halo.rounds, rounds);
      if (S == 1) {
        EXPECT_EQ(halo.cut_slots, 0);
        EXPECT_EQ(halo.wire_bytes, 0);
      } else {
        EXPECT_GT(halo.cut_slots, 0);
        // Every boundary slot ships a frame header every round, plus any
        // payload words.
        EXPECT_GE(halo.wire_bytes, 8 * halo.cut_slots * rounds);
      }
    }
  }
}

TEST(ShardedDeterminism, LubyGlauberMatchesUnshardedBitwise) {
  const auto g = graph::make_torus(6, 6);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 11);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  const std::int64_t rounds = 20;
  Network ref_net = make_luby_glauber_network(m, x0, 7);
  ref_net.run_rounds(rounds);
  const Reference ref{ref_net.outputs(), ref_net.stats()};
  expect_sharded_bitwise_equal(ref, rounds, [&](ShardedNetwork::Options opt) {
    return make_sharded_luby_glauber_network(m, x0, 7, std::move(opt));
  });
}

TEST(ShardedDeterminism, LocalMetropolisMatchesUnshardedBitwise) {
  util::Rng rng(23);
  const auto g = graph::make_random_regular(30, 4, rng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 9);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  const std::int64_t rounds = 20;
  Network ref_net = make_local_metropolis_network(m, x0, 13);
  ref_net.run_rounds(rounds);
  const Reference ref{ref_net.outputs(), ref_net.stats()};
  expect_sharded_bitwise_equal(ref, rounds, [&](ShardedNetwork::Options opt) {
    return make_sharded_local_metropolis_network(m, x0, 13, std::move(opt));
  });
}

TEST(ShardedDeterminism, LubyMisMatchesUnshardedBitwise) {
  util::Rng rng(3);
  const auto g = graph::make_random_regular(28, 4, rng);
  const std::int64_t rounds = 24;
  Network ref_net = make_luby_mis_network(g, 5);
  ref_net.run_rounds(rounds);
  const Reference ref{ref_net.outputs(), ref_net.stats()};
  expect_sharded_bitwise_equal(ref, rounds, [&](ShardedNetwork::Options opt) {
    return ShardedNetwork(
        g, 5, std::make_unique<LubyMisTable>(g->num_vertices()),
        std::move(opt));
  });
}

TEST(ShardedDeterminism, CspLocalMetropolisMatchesUnshardedBitwise) {
  const auto base = graph::make_torus(5, 5);
  const csp::FactorGraph fg = csp::make_dominating_set(*base, 1.5);
  const csp::Config x0(static_cast<std::size_t>(fg.n()), 1);
  const std::int64_t rounds = 20;
  Network ref_net = make_csp_local_metropolis_network(fg, x0, 31);
  ref_net.run_rounds(rounds);
  const Reference ref{ref_net.outputs(), ref_net.stats()};
  const graph::GraphPtr conflict = fg.make_conflict_graph();
  expect_sharded_bitwise_equal(ref, rounds, [&](ShardedNetwork::Options opt) {
    return ShardedNetwork(conflict, 31,
                          std::make_unique<CspLocalMetropolisTable>(fg, x0),
                          std::move(opt));
  });
}

TEST(ShardedDeterminism, LubyGlauberHaloCarriesEveryBoundarySlotEveryRound) {
  // LubyGlauber broadcasts every round, so every directed cut slot moves a
  // non-empty message each round — the strongest halo accounting identity.
  const auto g = graph::make_torus(6, 6);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 11);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  ShardedNetwork::Options opt;
  opt.partition.num_shards = 4;
  ShardedNetwork net = make_sharded_luby_glauber_network(m, x0, 7,
                                                         std::move(opt));
  const std::int64_t rounds = 10;
  net.run_rounds(rounds);
  const HaloStats& halo = net.halo_stats();
  EXPECT_EQ(halo.halo_messages, halo.cut_slots * rounds);
  EXPECT_GT(halo.semantic_bits, 0);
}

// ---------------------------------------------------------------------------
// Compact indices and the memory report
// ---------------------------------------------------------------------------

TEST(ShardedMemory, CompactIndicesAreBitwiseEquivalent) {
  const auto g = graph::make_torus(6, 6);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 11);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  ShardedNetwork::Options wide;
  wide.partition.num_shards = 3;
  ShardedNetwork::Options compact = wide;
  compact.plan.compact_indices = true;
  ShardedNetwork a = make_sharded_luby_glauber_network(m, x0, 7, std::move(wide));
  ShardedNetwork b =
      make_sharded_luby_glauber_network(m, x0, 7, std::move(compact));
  a.run_rounds(12);
  b.run_rounds(12);
  EXPECT_EQ(a.outputs(), b.outputs());
  EXPECT_TRUE(a.stats() == b.stats());
  EXPECT_EQ(b.plan().translation_bytes() * 2, a.plan().translation_bytes());
}

TEST(ShardedMemory, ReportAccountsArenasTranslationsAndSharedStructures) {
  const auto g = graph::make_torus(6, 6);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 11);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  const auto slots = static_cast<std::int64_t>(g->incident_edges_flat().size());

  Network flat = make_luby_glauber_network(m, x0, 7);
  const MemoryReport fr = flat.memory_report();
  EXPECT_EQ(fr.slots, slots);
  EXPECT_GT(fr.arena_bytes, 0);
  EXPECT_EQ(fr.translation_bytes, 0);
  EXPECT_GT(fr.total_bytes(), 0);

  ShardedNetwork::Options opt;
  opt.partition.num_shards = 3;
  ShardedNetwork net = make_sharded_luby_glauber_network(m, x0, 7,
                                                         std::move(opt));
  const MemoryReport sr = net.memory_report();
  // Shard arenas replicate the boundary slots (the halo), nothing else.
  EXPECT_EQ(sr.slots, slots + net.plan().cut_slots);
  EXPECT_GT(sr.translation_bytes, 0);
  EXPECT_GT(sr.mirror_bytes, 0);
  EXPECT_EQ(sr.graph_csr_bytes, fr.graph_csr_bytes);
  EXPECT_GT(sr.total_bytes(), fr.total_bytes());
}

// ---------------------------------------------------------------------------
// Facade integration
// ---------------------------------------------------------------------------

TEST(ShardedFacade, ShardedSampleEqualsUnshardedBitwise) {
  const auto g = graph::make_torus(6, 6);
  core::SamplerOptions opt;
  opt.backend = core::Backend::local_network;
  opt.algorithm = core::Algorithm::luby_glauber;
  opt.seed = 11;
  opt.rounds = 30;
  const core::SampleResult flat = core::sample_coloring(g, 11, opt);
  EXPECT_EQ(flat.halo_stats.wire_bytes, 0);
  for (int S : {2, 4}) {
    core::SamplerOptions sopt = opt;
    sopt.num_shards = S;
    const core::SampleResult sharded = core::sample_coloring(g, 11, sopt);
    EXPECT_EQ(sharded.config, flat.config) << S << " shards";
    EXPECT_TRUE(sharded.message_stats == flat.message_stats) << S << " shards";
    EXPECT_GT(sharded.halo_stats.wire_bytes, 0);
  }
}

TEST(ShardedFacade, NamedValidationErrors) {
  const auto g = graph::make_cycle(8);
  core::SamplerOptions opt;
  opt.rounds = 4;
  opt.num_shards = 0;
  EXPECT_NE(thrown_message([&] { (void)core::sample_coloring(g, 5, opt); })
                .find("num_shards must be >= 1"),
            std::string::npos);
  opt.num_shards = 2;  // still the default chain backend
  EXPECT_NE(thrown_message([&] { (void)core::sample_coloring(g, 5, opt); })
                .find("requires the local_network backend"),
            std::string::npos);
  opt.backend = core::Backend::local_network;
  opt.num_replicas = 2;
  EXPECT_NE(
      thrown_message([&] {
        (void)core::sample_many(mrf::make_proper_coloring(g, 5), opt);
      }).find("does not support sharded networks"),
      std::string::npos);
  const csp::FactorGraph fg = csp::make_dominating_set(*g, 1.0);
  const csp::Config x0(static_cast<std::size_t>(fg.n()), 1);
  core::SamplerOptions copt;
  copt.rounds = 4;
  copt.num_shards = 2;
  EXPECT_NE(thrown_message([&] { (void)core::sample_csp(fg, x0, copt); })
                .find("does not support sharded networks"),
            std::string::npos);
}

TEST(ShardedFacade, ShardModeNetworkRejectsDirectDriving) {
  // A shard's Network belongs to its sharded runtime: the un-sharded entry
  // points must fail with a named error rather than corrupt the round.
  const auto g = graph::make_torus(4, 4);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 9);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  auto table = std::make_unique<LubyGlauberTable>(
      std::make_shared<const mrf::CompiledMrf>(m), x0, LubyGlauberNetOptions{});
  graph::PartitionOptions popt;
  popt.num_shards = 2;
  const graph::Partition part = graph::make_partition(*g, popt);
  const ShardPlan plan = make_shard_plan(*g, part);
  const std::vector<int> mirror = make_mirror_index(*g);
  Network shard = ShardAccess::make_shard(g, 7, plan, 0, mirror, table.get());
  EXPECT_NE(thrown_message([&] { shard.run_round(); })
                .find("driven by its sharded runtime"),
            std::string::npos);
  chains::ParallelEngine engine(2);
  EXPECT_NE(thrown_message([&] { shard.set_engine(&engine); })
                .find("driven by its sharded runtime"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// ProcessTransport
// ---------------------------------------------------------------------------

std::string shard_worker_path() {
#ifdef LSAMPLE_SHARD_WORKER_PATH
  return LSAMPLE_SHARD_WORKER_PATH;
#else
  const char* env = std::getenv("LSAMPLE_SHARD_WORKER");
  return env != nullptr ? env : "";
#endif
}

TEST(ProcessTransport, RoundTripMatchesInProcessBitwise) {
  const std::string worker = shard_worker_path();
  if (worker.empty())
    GTEST_SKIP() << "shard_worker binary not available "
                    "(LSAMPLE_SHARD_WORKER unset)";
  const auto g = graph::make_torus(5, 5);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 9);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  const std::int64_t rounds = 12;

  Network flat = make_luby_glauber_network(m, x0, 3);
  flat.run_rounds(rounds);

  ShardedNetwork::Options opt;
  opt.partition.num_shards = 2;
  ShardedNetwork net = make_sharded_luby_glauber_network(
      m, x0, 3, std::move(opt), {}, make_process_transport({worker}));
  EXPECT_STREQ(net.transport_name(), "process");
  net.run_rounds(rounds);
  EXPECT_EQ(net.outputs(), flat.outputs());
  EXPECT_TRUE(net.stats() == flat.stats());
  EXPECT_GT(net.halo_stats().wire_bytes, 0);
  // Worker arenas are real: the memory report sums them over the wire.
  EXPECT_GT(net.memory_report().arena_bytes, 0);
  // One process per shard: an engine cannot drive remote shards.
  chains::ParallelEngine engine(2);
  EXPECT_NE(thrown_message([&] { net.set_engine(&engine); })
                .find("cannot drive remote shards"),
            std::string::npos);
}

TEST(ProcessTransport, LocalMetropolisRoundTripMatchesInProcessBitwise) {
  const std::string worker = shard_worker_path();
  if (worker.empty())
    GTEST_SKIP() << "shard_worker binary not available "
                    "(LSAMPLE_SHARD_WORKER unset)";
  util::Rng rng(9);
  const auto g = graph::make_random_regular(24, 4, rng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 9);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  const std::int64_t rounds = 10;
  Network flat = make_local_metropolis_network(m, x0, 21);
  flat.run_rounds(rounds);
  ShardedNetwork::Options opt;
  opt.partition.num_shards = 3;
  ShardedNetwork net = make_sharded_local_metropolis_network(
      m, x0, 21, std::move(opt), make_process_transport({worker}));
  net.run_rounds(rounds);
  EXPECT_EQ(net.outputs(), flat.outputs());
  EXPECT_TRUE(net.stats() == flat.stats());
}

TEST(ProcessTransport, MissingProgramSpecIsANamedError) {
  // Non-serializable tables (here: Luby-MIS) must be rejected up front —
  // before any worker is spawned — with an error naming the limitation.
  const auto g = graph::make_cycle(8);
  const std::string msg = thrown_message([&] {
    ShardedNetwork::Options opt;
    opt.partition.num_shards = 2;
    (void)ShardedNetwork(g, 5,
                         std::make_unique<LubyMisTable>(g->num_vertices()),
                         std::move(opt),
                         make_process_transport({"/nonexistent/worker"}));
  });
  EXPECT_NE(msg.find("program_spec"), std::string::npos) << msg;
  EXPECT_NE(msg.find("in-process only"), std::string::npos) << msg;
}

}  // namespace
}  // namespace lsample::local
