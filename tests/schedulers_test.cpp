#include "chains/schedulers.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace lsample::chains {
namespace {

std::vector<int> as_indicator(const std::vector<char>& sel) {
  return {sel.begin(), sel.end()};
}

TEST(LubyScheduler, SelectsAnIndependentSet) {
  util::Rng grng(3);
  const auto g = graph::make_random_regular(24, 4, grng);
  LubyScheduler sched(g, 7);
  std::vector<char> sel;
  for (int t = 0; t < 50; ++t) {
    sched.select(t, sel);
    EXPECT_TRUE(graph::is_independent_set(*g, as_indicator(sel)));
  }
}

TEST(LubyScheduler, SelectionIsNonEmptyOnNonEmptyGraphs) {
  const auto g = graph::make_cycle(9);
  LubyScheduler sched(g, 5);
  std::vector<char> sel;
  for (int t = 0; t < 50; ++t) {
    sched.select(t, sel);
    int count = 0;
    for (char s : sel) count += s;
    EXPECT_GE(count, 1);  // the global maximum is always selected
  }
}

TEST(LubyScheduler, SelectionProbabilityAtLeastGamma) {
  // Pr[v in I] >= 1/(Delta+1); check empirically with slack.
  util::Rng grng(11);
  const auto g = graph::make_random_regular(20, 4, grng);
  LubyScheduler sched(g, 13);
  const int rounds = 4000;
  std::vector<int> hits(20, 0);
  std::vector<char> sel;
  for (int t = 0; t < rounds; ++t) {
    sched.select(t, sel);
    for (int v = 0; v < 20; ++v) hits[static_cast<std::size_t>(v)] += sel[static_cast<std::size_t>(v)];
  }
  const double gamma = sched.gamma_lower_bound();
  EXPECT_NEAR(gamma, 0.2, 1e-12);
  for (int v = 0; v < 20; ++v) {
    const double freq = static_cast<double>(hits[static_cast<std::size_t>(v)]) / rounds;
    EXPECT_GT(freq, gamma - 0.03) << "vertex " << v;
  }
}

TEST(LubyScheduler, IsolatedVertexAlwaysSelected) {
  auto g = std::make_shared<graph::Graph>(3);
  g->add_edge(0, 1);
  LubyScheduler sched(g, 19);
  std::vector<char> sel;
  for (int t = 0; t < 20; ++t) {
    sched.select(t, sel);
    EXPECT_EQ(sel[2], 1);
  }
}

TEST(LubyScheduler, DeterministicGivenSeedAndTime) {
  const auto g = graph::make_cycle(8);
  LubyScheduler a(g, 23);
  LubyScheduler b(g, 23);
  std::vector<char> sa;
  std::vector<char> sb;
  for (int t = 0; t < 10; ++t) {
    a.select(t, sa);
    b.select(t, sb);
    EXPECT_EQ(sa, sb);
  }
}

TEST(SlackLubyScheduler, SelectsIndependentSetsWithLowerRate) {
  const auto g = graph::make_cycle(12);
  SlackLubyScheduler sched(g, 0.3, 29);
  std::vector<char> sel;
  int total = 0;
  for (int t = 0; t < 1000; ++t) {
    sched.select(t, sel);
    EXPECT_TRUE(graph::is_independent_set(*g, as_indicator(sel)));
    for (char s : sel) total += s;
  }
  // Pr[v selected] = p(1-p)^2 = 0.147 on a cycle.
  const double rate = total / (1000.0 * 12.0);
  EXPECT_NEAR(rate, 0.3 * 0.7 * 0.7, 0.02);
  EXPECT_NEAR(sched.gamma_lower_bound(), 0.3 * 0.49, 1e-12);
}

TEST(ChromaticScheduler, ClassesPartitionAndAreIndependent) {
  util::Rng grng(31);
  const auto g = graph::make_erdos_renyi(20, 0.25, grng);
  ChromaticScheduler sched(g, 37);
  EXPECT_LE(sched.num_classes(), g->max_degree() + 1);
  std::vector<char> sel;
  std::vector<int> covered(20, 0);
  for (int t = 0; t < 300; ++t) {
    sched.select(t, sel);
    EXPECT_TRUE(graph::is_independent_set(*g, as_indicator(sel)));
    for (int v = 0; v < 20; ++v) covered[static_cast<std::size_t>(v)] += sel[static_cast<std::size_t>(v)];
  }
  for (int v = 0; v < 20; ++v) EXPECT_GT(covered[static_cast<std::size_t>(v)], 0);
}

}  // namespace
}  // namespace lsample::chains
