// Behavioral invariants of the chains: determinism, feasibility preservation,
// absorption from infeasible starts, and proposal statistics.
#include <gtest/gtest.h>

#include "chains/chain.hpp"
#include "chains/glauber.hpp"
#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/metropolis.hpp"
#include "chains/scan.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mrf/models.hpp"

namespace lsample::chains {
namespace {

TEST(InitHelpers, GreedyFeasibleIsFeasible) {
  util::Rng grng(3);
  const auto g = graph::make_random_regular(20, 4, grng);
  const mrf::Mrf coloring = mrf::make_proper_coloring(g, 5);
  EXPECT_TRUE(coloring.feasible(greedy_feasible_config(coloring)));
  const mrf::Mrf hardcore = mrf::make_hardcore(g, 1.0);
  const auto empty = greedy_feasible_config(hardcore);
  EXPECT_TRUE(hardcore.feasible(empty));
  const mrf::Mrf lists = mrf::make_list_coloring(
      graph::make_path(3), 4, {{0, 1, 2}, {1, 2, 3}, {0, 2, 3}});
  EXPECT_TRUE(lists.feasible(greedy_feasible_config(lists)));
}

TEST(InitHelpers, HammingDistance) {
  EXPECT_EQ(hamming_distance({0, 1, 2}, {0, 1, 2}), 0);
  EXPECT_EQ(hamming_distance({0, 1, 2}, {1, 1, 0}), 2);
  EXPECT_THROW((void)hamming_distance({0}, {0, 1}), std::invalid_argument);
}

TEST(Chains, SameSeedSameTrajectory) {
  const auto g = graph::make_cycle(12);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 5);
  const Config x0 = greedy_feasible_config(m);
  for (const auto make : {+[](const mrf::Mrf& m_, std::uint64_t s) {
                            return std::unique_ptr<Chain>(
                                new LubyGlauberChain(m_, s));
                          },
                          +[](const mrf::Mrf& m_, std::uint64_t s) {
                            return std::unique_ptr<Chain>(
                                new LocalMetropolisChain(m_, s));
                          }}) {
    auto a = make(m, 99);
    auto b = make(m, 99);
    auto c = make(m, 100);
    Config xa = x0;
    Config xb = x0;
    Config xc = x0;
    run(*a, xa, 0, 30);
    run(*b, xb, 0, 30);
    run(*c, xc, 0, 30);
    EXPECT_EQ(xa, xb);
    EXPECT_NE(xa, xc);  // overwhelmingly likely for 30 rounds on 12 vertices
  }
}

TEST(Chains, FeasibilityIsPreserved) {
  util::Rng grng(17);
  const auto g = graph::make_random_regular(16, 4, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 6);
  Config x = greedy_feasible_config(m);

  LocalMetropolisChain lm(m, 5);
  for (int t = 0; t < 100; ++t) {
    lm.step(x, t);
    ASSERT_TRUE(m.feasible(x)) << "LocalMetropolis left feasibility at " << t;
  }
  x = greedy_feasible_config(m);
  LubyGlauberChain lg(m, 5);
  for (int t = 0; t < 100; ++t) {
    lg.step(x, t);
    ASSERT_TRUE(m.feasible(x)) << "LubyGlauber left feasibility at " << t;
  }
}

TEST(Chains, AbsorbedFromInfeasibleStart) {
  // All-zero start is monochromatic (infeasible); with q >= Delta + 2 both
  // parallel chains must reach a proper coloring quickly.
  const auto g = graph::make_cycle(14);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 4);
  {
    Config x = constant_config(m, 0);
    LocalMetropolisChain lm(m, 7);
    run(lm, x, 0, 200);
    EXPECT_TRUE(m.feasible(x));
  }
  {
    Config x = constant_config(m, 0);
    LubyGlauberChain lg(m, 7);
    run(lg, x, 0, 200);
    EXPECT_TRUE(m.feasible(x));
  }
}

TEST(LubyGlauberChain, SelectedSetIsIndependent) {
  util::Rng grng(23);
  const auto g = graph::make_erdos_renyi(18, 0.2, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, g->max_degree() + 2);
  LubyGlauberChain chain(m, 11);
  Config x = greedy_feasible_config(m);
  for (int t = 0; t < 50; ++t) {
    chain.step(x, t);
    const auto& sel = chain.last_selected();
    EXPECT_TRUE(graph::is_independent_set(
        *g, std::vector<int>(sel.begin(), sel.end())));
  }
}

TEST(LocalMetropolisChain, AcceptanceFractionIsHighForLargeQ) {
  const auto g = graph::make_cycle(30);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 20);
  LocalMetropolisChain chain(m, 3);
  Config x = greedy_feasible_config(m);
  double total = 0.0;
  const int rounds = 50;
  for (int t = 0; t < rounds; ++t) {
    chain.step(x, t);
    total += chain.last_acceptance_fraction();
  }
  // Acceptance prob per vertex >= (1 - 3/q)^2 ~ 0.72 at q=20 on a cycle.
  EXPECT_GT(total / rounds, 0.6);
}

TEST(SequentialChains, RunAndStayInRange) {
  const auto g = graph::make_path(10);
  const mrf::Mrf m = mrf::make_potts(g, 3, 0.4);
  for (const auto make : {+[](const mrf::Mrf& m_, std::uint64_t s) {
                            return std::unique_ptr<Chain>(new GlauberChain(m_, s));
                          },
                          +[](const mrf::Mrf& m_, std::uint64_t s) {
                            return std::unique_ptr<Chain>(new MetropolisChain(m_, s));
                          },
                          +[](const mrf::Mrf& m_, std::uint64_t s) {
                            return std::unique_ptr<Chain>(new SystematicScanChain(m_, s));
                          }}) {
    auto chain = make(m, 31);
    Config x = constant_config(m, 1);
    run(*chain, x, 0, 50);
    for (int s : x) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 3);
    }
  }
}

TEST(Chains, UpdatesPerStepReportsSensibleValues) {
  const auto g = graph::make_cycle(10);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 5);
  GlauberChain glauber(m, 1);
  EXPECT_DOUBLE_EQ(glauber.updates_per_step(), 1.0);
  LocalMetropolisChain lm(m, 1);
  EXPECT_DOUBLE_EQ(lm.updates_per_step(), 10.0);
  LubyGlauberChain lg(m, 1);
  EXPECT_NEAR(lg.updates_per_step(), 10.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace lsample::chains
