// Determinism of the multi-threaded chain engine: every synchronous chain's
// trajectory under a ParallelEngine is bit-for-bit identical to the
// sequential trajectory, across seeds, models, and thread counts.  This is
// the property the counter-RNG design buys (a trajectory is a pure function
// of model, seed, t) and the contract Chain::set_engine documents.
#include "chains/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/schedulers.hpp"
#include "chains/synchronous_glauber.hpp"
#include "core/sampler.hpp"
#include "graph/generators.hpp"
#include "mrf/models.hpp"

namespace lsample::chains {
namespace {

TEST(ParallelEngine, PartitionCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 4, 7}) {
    ParallelEngine engine(threads);
    for (int n : {0, 1, 2, 5, 17, 100}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      engine.parallel_for(n, [&](int /*thread*/, int begin, int end) {
        for (int i = begin; i < end; ++i)
          hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "n=" << n << " threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelEngine, ReusableAcrossManyRounds) {
  ParallelEngine engine(4);
  std::vector<int> out(97, 0);
  for (int round = 0; round < 200; ++round) {
    engine.parallel_for(97, [&](int /*thread*/, int begin, int end) {
      for (int i = begin; i < end; ++i) out[static_cast<std::size_t>(i)] = round;
    });
    for (int i = 0; i < 97; ++i) ASSERT_EQ(out[static_cast<std::size_t>(i)], round);
  }
}

TEST(ParallelEngine, RethrowsWorkerExceptionAndStaysUsable) {
  ParallelEngine engine(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(
        engine.parallel_for(1000,
                            [&](int /*thread*/, int begin, int /*end*/) {
                              if (begin == 0) throw std::runtime_error("boom");
                            }),
        std::runtime_error);
    // The engine must come back clean: error slots cleared, barriers
    // re-armed, every index covered on the next dispatch.
    std::vector<std::atomic<int>> hits(1000);
    engine.parallel_for(1000, [&](int /*thread*/, int begin, int end) {
      for (int i = begin; i < end; ++i)
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (int i = 0; i < 1000; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "round=" << round << " i=" << i;
  }
}

TEST(ParallelEngine, SingleThreadEngineRunsInline) {
  // num_threads == 1 must not spawn workers or touch the barrier path —
  // the guard in perf_parallel_scaling relies on this being free.
  ParallelEngine engine(1);
  int calls = 0;
  engine.parallel_for(50, [&](int thread, int begin, int end) {
    EXPECT_EQ(thread, 0);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 50);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_THROW(engine.parallel_for(
                   1, [&](int, int, int) { throw std::logic_error("x"); }),
               std::logic_error);
  engine.parallel_for(50, [&](int, int, int) { ++calls; });
  EXPECT_EQ(calls, 2);
}

// ---------------------------------------------------------------------------
// Chain determinism.
// ---------------------------------------------------------------------------

using ChainFactory =
    std::function<std::unique_ptr<Chain>(const mrf::Mrf&, std::uint64_t)>;

struct NamedFactory {
  const char* label;
  ChainFactory make;
};

std::vector<NamedFactory> synchronous_factories() {
  return {
      {"SynchronousGlauber",
       [](const mrf::Mrf& m, std::uint64_t seed) -> std::unique_ptr<Chain> {
         return std::make_unique<SynchronousGlauberChain>(m, seed);
       }},
      {"LubyGlauber",
       [](const mrf::Mrf& m, std::uint64_t seed) -> std::unique_ptr<Chain> {
         return std::make_unique<LubyGlauberChain>(m, seed);
       }},
      {"LubyGlauber/slack",
       [](const mrf::Mrf& m, std::uint64_t seed) -> std::unique_ptr<Chain> {
         return std::make_unique<LubyGlauberChain>(
             m, seed,
             std::make_unique<SlackLubyScheduler>(m.graph_ptr(), 0.2, seed));
       }},
      {"LubyGlauber/chromatic",
       [](const mrf::Mrf& m, std::uint64_t seed) -> std::unique_ptr<Chain> {
         return std::make_unique<LubyGlauberChain>(
             m, seed,
             std::make_unique<ChromaticScheduler>(m.graph_ptr(), seed));
       }},
      {"LocalMetropolis",
       [](const mrf::Mrf& m, std::uint64_t seed) -> std::unique_ptr<Chain> {
         return std::make_unique<LocalMetropolisChain>(m, seed);
       }},
  };
}

mrf::Config run_trajectory(Chain& chain, mrf::Config x, int steps) {
  for (int t = 0; t < steps; ++t) chain.step(x, t);
  return x;
}

std::vector<int> thread_counts() {
  std::vector<int> counts{1, 2, 4};
  const int hw = ParallelEngine::hardware_threads();
  if (hw != 1 && hw != 2 && hw != 4) counts.push_back(hw);
  return counts;
}

void expect_engine_matches_sequential(const mrf::Mrf& m,
                                      const NamedFactory& factory,
                                      std::uint64_t seed, int steps) {
  const mrf::Config x0 = greedy_feasible_config(m);
  auto reference_chain = factory.make(m, seed);
  const mrf::Config reference = run_trajectory(*reference_chain, x0, steps);
  for (int threads : thread_counts()) {
    ParallelEngine engine(threads);
    auto chain = factory.make(m, seed);
    chain->set_engine(&engine);
    const mrf::Config got = run_trajectory(*chain, x0, steps);
    EXPECT_EQ(got, reference)
        << factory.label << " seed=" << seed << " threads=" << threads;
    chain->set_engine(nullptr);
    const mrf::Config sequential_again = run_trajectory(*chain, x0, steps);
    EXPECT_EQ(sequential_again, reference)
        << factory.label << " after detaching the engine";
  }
}

TEST(EngineDeterminism, ColoringTorus) {
  const mrf::Mrf m =
      mrf::make_proper_coloring(graph::make_torus(8, 8), 10);
  for (const auto& factory : synchronous_factories())
    for (std::uint64_t seed : {1ull, 42ull, 12345ull})
      expect_engine_matches_sequential(m, factory, seed, 30);
}

TEST(EngineDeterminism, HardcoreRandomRegular) {
  util::Rng grng(7);
  const auto g = graph::make_random_regular(48, 4, grng);
  const mrf::Mrf m = mrf::make_hardcore(g, 0.4);
  for (const auto& factory : synchronous_factories())
    for (std::uint64_t seed : {3ull, 99ull})
      expect_engine_matches_sequential(m, factory, seed, 30);
}

TEST(EngineDeterminism, IsingWithMultigraphEdges) {
  // Parallel edges exercise per-edge streams under the engine.
  auto g = std::make_shared<graph::Graph>(10);
  for (int v = 0; v < 10; ++v) {
    g->add_edge(v, (v + 1) % 10);
    if (v % 3 == 0) g->add_edge(v, (v + 1) % 10);  // parallel edge
  }
  const mrf::Mrf m = mrf::make_ising(g, 0.3);
  for (const auto& factory : synchronous_factories())
    for (std::uint64_t seed : {11ull, 77ull})
      expect_engine_matches_sequential(m, factory, seed, 40);
}

TEST(EngineDeterminism, TwoRuleNegativeControl) {
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_torus(6, 6), 9);
  const NamedFactory factory{
      "LocalMetropolis-noRule3",
      [](const mrf::Mrf& mm, std::uint64_t seed) -> std::unique_ptr<Chain> {
        return std::make_unique<LocalMetropolisTwoRuleChain>(mm, seed);
      }};
  for (std::uint64_t seed : {5ull, 21ull})
    expect_engine_matches_sequential(m, factory, seed, 30);
}

TEST(EngineDeterminism, StepByStepIdenticalUnderEngine) {
  // Stronger than final-state equality: every intermediate round matches.
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_torus(6, 6), 10);
  ParallelEngine engine(4);
  LocalMetropolisChain sequential(m, 9);
  LocalMetropolisChain parallel(m, 9);
  parallel.set_engine(&engine);
  mrf::Config xs = greedy_feasible_config(m);
  mrf::Config xp = xs;
  for (int t = 0; t < 25; ++t) {
    sequential.step(xs, t);
    parallel.step(xp, t);
    ASSERT_EQ(xs, xp) << "diverged at t=" << t;
    ASSERT_DOUBLE_EQ(sequential.last_acceptance_fraction(),
                     parallel.last_acceptance_fraction());
  }
}

TEST(EngineDeterminism, FacadeSampleIndependentOfThreadCount) {
  const auto g = graph::make_torus(8, 8);
  core::SamplerOptions opt;
  opt.algorithm = core::Algorithm::luby_glauber;
  opt.seed = 13;
  opt.rounds = 50;
  opt.num_threads = 1;
  const auto reference = core::sample_coloring(g, 12, opt);
  for (int threads : {2, 4, 0}) {  // 0 = all hardware threads
    opt.num_threads = threads;
    const auto got = core::sample_coloring(g, 12, opt);
    EXPECT_EQ(got.config, reference.config) << "threads=" << threads;
  }
  opt.algorithm = core::Algorithm::local_metropolis;
  opt.num_threads = 1;
  const auto lm_reference = core::sample_coloring(g, 12, opt);
  opt.num_threads = 4;
  const auto lm_got = core::sample_coloring(g, 12, opt);
  EXPECT_EQ(lm_got.config, lm_reference.config);
}

}  // namespace
}  // namespace lsample::chains
