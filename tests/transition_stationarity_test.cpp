// Exact verification of Proposition 3.1 and Theorem 4.1 across a grid of
// models: every chain's full transition matrix is built and checked for
// row-stochasticity, stationarity of the Gibbs distribution, reversibility
// (where claimed), aperiodicity, and absorption into the feasible region.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "inference/transition.hpp"
#include "mrf/models.hpp"

namespace lsample::inference {
namespace {

struct ModelCase {
  std::string name;
  std::function<mrf::Mrf()> make;
};

std::vector<ModelCase> model_cases() {
  return {
      {"coloring_path4_q3",
       [] { return mrf::make_proper_coloring(graph::make_path(4), 3); }},
      {"coloring_triangle_q4",
       [] { return mrf::make_proper_coloring(graph::make_cycle(3), 4); }},
      {"coloring_star3_q5",
       [] { return mrf::make_proper_coloring(graph::make_star(3), 5); }},
      {"list_coloring_path3",
       [] {
         return mrf::make_list_coloring(graph::make_path(3), 4,
                                        {{0, 1, 2}, {1, 2, 3}, {0, 2, 3}});
       }},
      {"hardcore_path4_l1",
       [] { return mrf::make_hardcore(graph::make_path(4), 1.0); }},
      {"hardcore_star3_l2p5",
       [] { return mrf::make_hardcore(graph::make_star(3), 2.5); }},
      {"hardcore_cycle5_l0p7",
       [] { return mrf::make_hardcore(graph::make_cycle(5), 0.7); }},
      {"ising_cycle4_b0p5",
       [] { return mrf::make_ising(graph::make_cycle(4), 0.5); }},
      {"ising_path3_field",
       [] { return mrf::make_ising(graph::make_path(3), -0.4, 0.3); }},
      {"potts_path3_q3_b0p7",
       [] { return mrf::make_potts(graph::make_path(3), 3, 0.7); }},
      {"potts_triangle_q3_anti",
       [] { return mrf::make_potts(graph::make_cycle(3), 3, -0.9); }},
  };
}

class StationaritySuite : public ::testing::TestWithParam<ModelCase> {
 protected:
  static constexpr double kTol = 1e-9;
};

TEST_P(StationaritySuite, GlauberIsReversible) {
  const mrf::Mrf m = GetParam().make();
  const StateSpace ss(m.n(), m.q());
  const auto mu = gibbs_distribution(m, ss);
  const auto p = glauber_transition(m, ss);
  EXPECT_LT(p.row_sum_error(), kTol);
  EXPECT_LT(stationarity_error(p, mu), kTol);
  EXPECT_LT(detailed_balance_error(p, mu), kTol);
}

TEST_P(StationaritySuite, MetropolisIsReversible) {
  const mrf::Mrf m = GetParam().make();
  const StateSpace ss(m.n(), m.q());
  const auto mu = gibbs_distribution(m, ss);
  const auto p = metropolis_transition(m, ss);
  EXPECT_LT(p.row_sum_error(), kTol);
  EXPECT_LT(stationarity_error(p, mu), kTol);
  EXPECT_LT(detailed_balance_error(p, mu), kTol);
}

// Proposition 3.1: LubyGlauber is reversible w.r.t. the Gibbs distribution.
TEST_P(StationaritySuite, LubyGlauberIsReversible) {
  const mrf::Mrf m = GetParam().make();
  const StateSpace ss(m.n(), m.q());
  const auto mu = gibbs_distribution(m, ss);
  const auto p = luby_glauber_transition(m, ss);
  EXPECT_LT(p.row_sum_error(), kTol);
  EXPECT_LT(stationarity_error(p, mu), kTol);
  EXPECT_LT(detailed_balance_error(p, mu), kTol);
}

// Theorem 4.1: LocalMetropolis is reversible w.r.t. the Gibbs distribution.
TEST_P(StationaritySuite, LocalMetropolisIsReversible) {
  const mrf::Mrf m = GetParam().make();
  const StateSpace ss(m.n(), m.q());
  const auto mu = gibbs_distribution(m, ss);
  const auto p = local_metropolis_transition(m, ss);
  EXPECT_LT(p.row_sum_error(), kTol);
  EXPECT_LT(stationarity_error(p, mu), kTol);
  EXPECT_LT(detailed_balance_error(p, mu), kTol);
}

// Scans are stationary but not reversible in general.
TEST_P(StationaritySuite, ScanIsStationary) {
  const mrf::Mrf m = GetParam().make();
  const StateSpace ss(m.n(), m.q());
  const auto mu = gibbs_distribution(m, ss);
  const auto p = scan_transition(m, ss);
  EXPECT_LT(p.row_sum_error(), kTol);
  EXPECT_LT(stationarity_error(p, mu), kTol);
}

TEST_P(StationaritySuite, ChromaticSchedulerIsReversible) {
  const mrf::Mrf m = GetParam().make();
  const StateSpace ss(m.n(), m.q());
  const auto mu = gibbs_distribution(m, ss);
  const auto p = chromatic_transition(m, ss);
  EXPECT_LT(p.row_sum_error(), kTol);
  EXPECT_LT(stationarity_error(p, mu), kTol);
  EXPECT_LT(detailed_balance_error(p, mu), kTol);
}

// Feasible configurations are never left (the first half of the absorption
// argument) and all have self-loops (aperiodicity).
TEST_P(StationaritySuite, FeasibleRegionIsClosedAndAperiodic) {
  const mrf::Mrf m = GetParam().make();
  const StateSpace ss(m.n(), m.q());
  const auto mu = gibbs_distribution(m, ss);
  const auto plg = luby_glauber_transition(m, ss);
  EXPECT_LT(feasible_escape_mass(plg, mu), kTol);
  EXPECT_GT(min_feasible_self_loop(plg, mu), 0.0);
  const auto plm = local_metropolis_transition(m, ss);
  EXPECT_LT(feasible_escape_mass(plm, mu), kTol);
  EXPECT_GT(min_feasible_self_loop(plm, mu), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, StationaritySuite,
                         ::testing::ValuesIn(model_cases()),
                         [](const auto& test_info) { return test_info.param.name; });

// The paper remarks that the third filter rule "looks redundant" but is
// required for reversibility.  Dropping it must break stationarity.
TEST(ThirdRuleNegativeControl, TwoRuleVariantIsNotGibbsStationary) {
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(3), 3);
  const StateSpace ss(3, 3);
  const auto mu = gibbs_distribution(m, ss);

  const auto full = local_metropolis_transition(m, ss);
  EXPECT_LT(stationarity_error(full, mu), 1e-9);

  const auto two_rule = local_metropolis_two_rule_transition(m, ss);
  EXPECT_LT(two_rule.row_sum_error(), 1e-9);
  EXPECT_GT(stationarity_error(two_rule, mu), 1e-3);
  EXPECT_GT(detailed_balance_error(two_rule, mu), 1e-4);
}

TEST(ThirdRuleNegativeControl, AlsoBrokenForIndependentSets) {
  const mrf::Mrf m = mrf::make_hardcore(graph::make_path(3), 1.0);
  const StateSpace ss(3, 2);
  const auto mu = gibbs_distribution(m, ss);
  const auto two_rule = local_metropolis_two_rule_transition(m, ss);
  EXPECT_GT(stationarity_error(two_rule, mu), 1e-3);
}

}  // namespace
}  // namespace lsample::inference
