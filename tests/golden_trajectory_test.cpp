// Golden trajectory-hash pins: one FNV-1a hash of the full trajectory per
// (family, algorithm) pair at a fixed (seed, steps, rank).  These values pin
// the RNG stream layout end to end — seed derivation, CounterRng domain
// separation, per-kernel draw ordering, AND the fuzzer's instance generators.
// Any accidental change fails here loudly instead of silently shifting
// statistics under every downstream test.
//
// To regenerate after an INTENTIONAL stream or generator change:
//   ./build/src/testing/fuzz_driver --goldens
// and paste the printed table over kGoldens below (note the change in the
// commit message — it invalidates cross-version trajectory comparisons).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "core/sampler.hpp"
#include "testing/fuzz.hpp"

namespace lsample::testing {
namespace {

using core::Algorithm;

constexpr std::uint64_t kSeed = 1234;
constexpr std::int64_t kSteps = 32;
constexpr int kRank = 0;

struct Golden {
  Family family;
  Algorithm algorithm;
  std::uint64_t hash;
};

constexpr Golden kGoldens[] = {
    {Family::coloring, Algorithm::luby_glauber, 1774952173330793194ULL},
    {Family::coloring, Algorithm::local_metropolis, 6409416256574901339ULL},
    {Family::list_coloring, Algorithm::luby_glauber, 9875378857027565057ULL},
    {Family::list_coloring, Algorithm::local_metropolis, 9247679427164220039ULL},
    {Family::hardcore, Algorithm::luby_glauber, 5102059211759630791ULL},
    {Family::hardcore, Algorithm::local_metropolis, 3551138673892306417ULL},
    {Family::ising, Algorithm::luby_glauber, 8437254954466800692ULL},
    {Family::ising, Algorithm::local_metropolis, 12839182211807219449ULL},
    {Family::potts, Algorithm::luby_glauber, 5063354452901452239ULL},
    {Family::potts, Algorithm::local_metropolis, 4401766289484098622ULL},
    {Family::widom_rowlinson, Algorithm::luby_glauber, 2493027962921173181ULL},
    {Family::widom_rowlinson, Algorithm::local_metropolis,
     9326499265643164786ULL},
    {Family::homomorphism, Algorithm::luby_glauber, 3605752249351603966ULL},
    {Family::homomorphism, Algorithm::local_metropolis,
     8061191056170215551ULL},
    {Family::dominating_set, Algorithm::luby_glauber, 17833651330162045746ULL},
    {Family::dominating_set, Algorithm::local_metropolis,
     3518509592553919547ULL},
    {Family::nae_hypergraph, Algorithm::luby_glauber, 12822514543169656996ULL},
    {Family::nae_hypergraph, Algorithm::local_metropolis,
     17252525829883695666ULL},
    {Family::hypergraph_independent_set, Algorithm::luby_glauber,
     3213745244969728627ULL},
    {Family::hypergraph_independent_set, Algorithm::local_metropolis,
     10405639858589606479ULL},
    {Family::monomer_dimer, Algorithm::luby_glauber, 9473171229572580178ULL},
    {Family::monomer_dimer, Algorithm::local_metropolis,
     12137822025228018479ULL},
    {Family::hypergraph_coloring, Algorithm::luby_glauber,
     17205791925198724138ULL},
    {Family::hypergraph_coloring, Algorithm::local_metropolis,
     11457568010341816864ULL},
    {Family::ksat, Algorithm::luby_glauber, 9134621579405170193ULL},
    {Family::ksat, Algorithm::local_metropolis, 13156748603078281758ULL},
};

TEST(GoldenTrajectory, HashesMatchThePinnedTable) {
  for (const auto& g : kGoldens) {
    EXPECT_EQ(trajectory_hash(g.family, g.algorithm, kSeed, kSteps, kRank),
              g.hash)
        << family_name(g.family) << " / "
        << (g.algorithm == Algorithm::luby_glauber ? "luby_glauber"
                                                   : "local_metropolis")
        << " drifted; if the change is intentional, regenerate with "
           "`fuzz_driver --goldens`";
  }
}

TEST(GoldenTrajectory, TableCoversEveryFamilyUnderBothAlgorithms) {
  std::set<std::pair<int, int>> seen;
  for (const auto& g : kGoldens)
    seen.emplace(static_cast<int>(g.family), static_cast<int>(g.algorithm));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(2 * kNumFamilies));
}

TEST(GoldenTrajectory, HashesAreDistinctAcrossTheTable) {
  // A collision across rows would mean the hash ignores part of its input
  // (as happened when frozen instances made both algorithms' trajectories
  // identical — the generator now guarantees movable instances).
  std::set<std::uint64_t> hashes;
  for (const auto& g : kGoldens) hashes.insert(g.hash);
  EXPECT_EQ(hashes.size(), std::size(kGoldens));
}

TEST(GoldenTrajectory, HashIsSensitiveToSeedAndSteps) {
  const std::uint64_t base =
      trajectory_hash(Family::ising, Algorithm::luby_glauber, kSeed, kSteps);
  EXPECT_NE(base, trajectory_hash(Family::ising, Algorithm::luby_glauber,
                                  kSeed + 1, kSteps));
  EXPECT_NE(base, trajectory_hash(Family::ising, Algorithm::luby_glauber,
                                  kSeed, kSteps + 1));
  // And deterministic: recomputing reproduces the pinned value.
  EXPECT_EQ(base, trajectory_hash(Family::ising, Algorithm::luby_glauber,
                                  kSeed, kSteps));
}

}  // namespace
}  // namespace lsample::testing
