// The compiled CSP runtime: CompiledFactorGraph structure, bitwise equality
// of the migrated chains against the pre-compiled seed implementations,
// sequential-vs-threaded determinism at several thread counts, replica
// batches vs the sequential loop, shared-vs-owned compiled views, and the
// construction-time validation errors (by message).
#include "csp/compiled.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chains/engine.hpp"
#include "chains/glauber.hpp"
#include "chains/replicas.hpp"
#include "chains/schedulers.hpp"
#include "core/sampler.hpp"
#include "csp/csp_chains.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "mrf/models.hpp"

namespace lsample::csp {
namespace {

// --- Seed reference implementations ---------------------------------------
// Verbatim copies of the pre-compiled chains (virtual dispatch over the
// FactorGraph, per-chain conflict graph, scratch Config copies inside
// marginal_weights / constraint_pass_prob).  The migrated chains must
// reproduce these bit for bit.

class SeedGlauber {
 public:
  SeedGlauber(const FactorGraph& fg, std::uint64_t seed)
      : fg_(fg), rng_(seed) {}
  void step(Config& x, std::int64_t t) {
    const int v = rng_.uniform_int(util::RngDomain::global_choice, 0,
                                   static_cast<std::uint64_t>(t), 0, fg_.n());
    x[static_cast<std::size_t>(v)] =
        csp_heat_bath_resample(fg_, rng_, v, t, x, weights_);
  }

 private:
  const FactorGraph& fg_;
  util::CounterRng rng_;
  std::vector<double> weights_;
};

class SeedLubyGlauber {
 public:
  SeedLubyGlauber(const FactorGraph& fg, std::uint64_t seed)
      : fg_(fg), rng_(seed), conflict_(fg.make_conflict_graph()) {}
  void step(Config& x, std::int64_t t) {
    const int n = fg_.n();
    priorities_.resize(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
      priorities_[static_cast<std::size_t>(v)] =
          chains::luby_priority(rng_, v, t);
    for (int v = 0; v < n; ++v) {
      bool is_max = true;
      for (int u : conflict_->neighbors(v)) {
        const double pu = priorities_[static_cast<std::size_t>(u)];
        const double pv = priorities_[static_cast<std::size_t>(v)];
        if (pu > pv || (pu == pv && u > v)) {
          is_max = false;
          break;
        }
      }
      if (is_max)
        x[static_cast<std::size_t>(v)] =
            csp_heat_bath_resample(fg_, rng_, v, t, x, weights_);
    }
  }

 private:
  const FactorGraph& fg_;
  util::CounterRng rng_;
  std::shared_ptr<graph::Graph> conflict_;
  std::vector<double> priorities_;
  std::vector<double> weights_;
};

class SeedLocalMetropolis {
 public:
  SeedLocalMetropolis(const FactorGraph& fg, std::uint64_t seed)
      : fg_(fg), rng_(seed) {}
  void step(Config& x, std::int64_t t) {
    const int n = fg_.n();
    proposal_.resize(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      const double u = rng_.u01(util::RngDomain::vertex_proposal,
                                static_cast<std::uint64_t>(v),
                                static_cast<std::uint64_t>(t));
      proposal_[static_cast<std::size_t>(v)] =
          util::categorical(fg_.vertex_activity(v), u);
    }
    const int nc = fg_.num_constraints();
    pass_.resize(static_cast<std::size_t>(nc));
    for (int c = 0; c < nc; ++c) {
      const double p = fg_.constraint_pass_prob(c, proposal_, x);
      const double u = rng_.u01(util::RngDomain::constraint_coin,
                                static_cast<std::uint64_t>(c),
                                static_cast<std::uint64_t>(t));
      pass_[static_cast<std::size_t>(c)] = u < p ? 1 : 0;
    }
    for (int v = 0; v < n; ++v) {
      bool accept = true;
      for (int c : fg_.constraints_of(v))
        if (pass_[static_cast<std::size_t>(c)] == 0) {
          accept = false;
          break;
        }
      if (accept)
        x[static_cast<std::size_t>(v)] =
            proposal_[static_cast<std::size_t>(v)];
    }
  }

 private:
  const FactorGraph& fg_;
  util::CounterRng rng_;
  Config proposal_;
  std::vector<char> pass_;
};

// --- Instances ------------------------------------------------------------

/// Two constraints on the SAME variable pair (a "multi-edge" of the
/// constraint hypergraph, deduplicated to one conflict edge) plus
/// overlapping triples sharing scope vertices, mixed soft/hard tables, and
/// non-uniform vertex activities.
FactorGraph make_shared_constraint_instance() {
  FactorGraph fg(5, 3);
  std::vector<double> soft_neq(9, 1.0);
  for (int s = 0; s < 3; ++s)
    soft_neq[static_cast<std::size_t>(s) * 3 + static_cast<std::size_t>(s)] =
        0.25;
  std::vector<double> asym(9);
  for (int i = 0; i < 9; ++i) asym[static_cast<std::size_t>(i)] = 0.3 + 0.1 * i;
  fg.add_constraint({0, 1}, soft_neq);
  fg.add_constraint({0, 1}, asym);  // same scope, different table
  std::vector<double> nae3(27, 1.0);
  for (int s = 0; s < 3; ++s)
    nae3[static_cast<std::size_t>(s) * (1 + 3 + 9)] = 0.0;  // all-equal -> 0
  fg.add_constraint({1, 2, 3}, nae3);
  fg.add_constraint({2, 3, 4}, nae3);
  fg.set_vertex_activity(0, {1.0, 2.0, 0.5});
  fg.set_vertex_activity(3, {0.7, 1.3, 1.0});
  return fg;
}

struct Instance {
  std::string name;
  std::function<FactorGraph()> make;
  Config x0;
};

std::vector<Instance> instances() {
  return {
      {"dominating_grid4", [] {
         return make_dominating_set(*graph::make_grid(4, 4), 1.2);
       }, Config(16, 1)},
      {"nae_hypergraph", [] {
         return make_hypergraph_nae(6, 3, {{0, 1, 2}, {2, 3, 4}, {4, 5, 0}});
       }, Config{0, 1, 2, 0, 1, 2}},
      {"shared_constraint", make_shared_constraint_instance,
       Config{0, 1, 2, 1, 0}},
      {"mrf_embedding", [] {
         return make_mrf_as_csp(
             mrf::make_proper_coloring(graph::make_cycle(6), 4));
       }, Config{0, 1, 2, 3, 0, 1}},
  };
}

constexpr std::int64_t kSteps = 60;

// --- Compiled view structure ----------------------------------------------

TEST(CspCompiledView, DedupsTablesAndSharesConflictGraph) {
  const FactorGraph fg = make_dominating_set(*graph::make_cycle(8), 1.0);
  const CompiledFactorGraph cfg(fg);
  // Every cover constraint of a cycle has arity 3 and the same table.
  EXPECT_EQ(cfg.num_constraints(), 8);
  EXPECT_EQ(cfg.num_tables(), 1);
  // The conflict graph is finalized and matches the per-chain construction.
  const auto own = fg.make_conflict_graph();
  ASSERT_EQ(cfg.conflict_graph().num_vertices(), own->num_vertices());
  EXPECT_EQ(cfg.conflict_graph().num_edges(), own->num_edges());
  for (int v = 0; v < own->num_vertices(); ++v) {
    const auto a = cfg.conflict_graph().neighbors(v);
    const auto b = own->neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(CspCompiledView, EvaluationsMatchFactorGraphBitwise) {
  for (const auto& inst : instances()) {
    const FactorGraph fg = inst.make();
    const CompiledFactorGraph cfg(fg);
    Config x = inst.x0;
    Config sigma = inst.x0;
    // Perturb sigma deterministically so sigma != x.
    for (std::size_t i = 0; i < sigma.size(); ++i)
      sigma[i] = (sigma[i] + static_cast<int>(i)) % fg.q();
    std::vector<double> a, b;
    for (int v = 0; v < fg.n(); ++v) {
      fg.marginal_weights(v, x, a);
      cfg.marginal_weights(v, x, b);
      EXPECT_EQ(a, b) << inst.name << " vertex " << v;
    }
    for (int c = 0; c < fg.num_constraints(); ++c)
      EXPECT_EQ(fg.constraint_pass_prob(c, sigma, x),
                cfg.constraint_pass_prob(c, sigma, x))
          << inst.name << " constraint " << c;
  }
}

// --- Bitwise equality with the seed implementations -----------------------

TEST(CspSeedEquivalence, GlauberMatchesSeedBitwise) {
  for (const auto& inst : instances()) {
    const FactorGraph fg = inst.make();
    SeedGlauber ref(fg, 11);
    CspGlauberChain chain(fg, 11);
    Config xr = inst.x0, xc = inst.x0;
    for (std::int64_t t = 0; t < kSteps; ++t) {
      ref.step(xr, t);
      chain.step(xc, t);
      ASSERT_EQ(xr, xc) << inst.name << " t=" << t;
    }
  }
}

TEST(CspSeedEquivalence, LubyGlauberMatchesSeedBitwise) {
  for (const auto& inst : instances()) {
    const FactorGraph fg = inst.make();
    SeedLubyGlauber ref(fg, 12);
    CspLubyGlauberChain chain(fg, 12);
    Config xr = inst.x0, xc = inst.x0;
    for (std::int64_t t = 0; t < kSteps; ++t) {
      ref.step(xr, t);
      chain.step(xc, t);
      ASSERT_EQ(xr, xc) << inst.name << " t=" << t;
    }
  }
}

TEST(CspSeedEquivalence, LocalMetropolisMatchesSeedBitwise) {
  for (const auto& inst : instances()) {
    const FactorGraph fg = inst.make();
    SeedLocalMetropolis ref(fg, 13);
    CspLocalMetropolisChain chain(fg, 13);
    Config xr = inst.x0, xc = inst.x0;
    for (std::int64_t t = 0; t < kSteps; ++t) {
      ref.step(xr, t);
      chain.step(xc, t);
      ASSERT_EQ(xr, xc) << inst.name << " t=" << t;
    }
  }
}

// The selected set exposed by last_selected() must be strongly independent
// in the constraint hypergraph (no two selected vertices share a
// constraint, Remark in §3) and nonempty (a finite priority vector always
// has local maxima).
TEST(CspSeedEquivalence, LastSelectedIsStronglyIndependent) {
  const FactorGraph fg = make_shared_constraint_instance();
  CspLubyGlauberChain chain(fg, 31);
  Config x{0, 1, 2, 1, 0};
  for (std::int64_t t = 0; t < 20; ++t) {
    chain.step(x, t);
    const auto& sel = chain.last_selected();
    ASSERT_EQ(sel.size(), static_cast<std::size_t>(fg.n()));
    int count = 0;
    for (char s : sel) count += s != 0 ? 1 : 0;
    EXPECT_GT(count, 0) << "t=" << t;
    for (int c = 0; c < fg.num_constraints(); ++c) {
      int in_scope = 0;
      for (int v : fg.constraint(c).scope)
        in_scope += sel[static_cast<std::size_t>(v)] != 0 ? 1 : 0;
      EXPECT_LE(in_scope, 1) << "constraint " << c << " t=" << t;
    }
  }
}

// --- Sequential vs threaded determinism -----------------------------------

std::vector<int> thread_counts() {
  std::vector<int> counts{1, 2, 4};
  const int hw = chains::ParallelEngine::hardware_threads();
  if (hw != 1 && hw != 2 && hw != 4) counts.push_back(hw);
  return counts;
}

template <typename ChainT>
void expect_thread_count_invariant(const Instance& inst, std::uint64_t seed) {
  const FactorGraph fg = inst.make();
  Config x_seq = inst.x0;
  {
    ChainT chain(fg, seed);
    for (std::int64_t t = 0; t < kSteps; ++t) chain.step(x_seq, t);
  }
  for (int threads : thread_counts()) {
    chains::ParallelEngine engine(threads);
    ChainT chain(fg, seed);
    chain.set_engine(&engine);
    Config x = inst.x0;
    for (std::int64_t t = 0; t < kSteps; ++t) chain.step(x, t);
    EXPECT_EQ(x_seq, x) << inst.name << " threads=" << threads;
  }
}

TEST(CspEngineDeterminism, GlauberIndependentOfThreadCount) {
  for (const auto& inst : instances())
    expect_thread_count_invariant<CspGlauberChain>(inst, 21);
}

TEST(CspEngineDeterminism, LubyGlauberIndependentOfThreadCount) {
  for (const auto& inst : instances())
    expect_thread_count_invariant<CspLubyGlauberChain>(inst, 22);
}

TEST(CspEngineDeterminism, LocalMetropolisIndependentOfThreadCount) {
  for (const auto& inst : instances())
    expect_thread_count_invariant<CspLocalMetropolisChain>(inst, 23);
}

// --- Shared vs owned compiled views ---------------------------------------

TEST(CspSharedView, SharedAndOwnedViewsAgreeBitwise) {
  const FactorGraph fg = make_shared_constraint_instance();
  const auto shared = std::make_shared<const CompiledFactorGraph>(fg);
  const Config x0{0, 1, 2, 1, 0};
  {
    CspLubyGlauberChain owned(fg, 5);
    CspLubyGlauberChain shared_chain(shared, 5);
    Config xa = x0, xb = x0;
    for (std::int64_t t = 0; t < kSteps; ++t) {
      owned.step(xa, t);
      shared_chain.step(xb, t);
      ASSERT_EQ(xa, xb) << "t=" << t;
    }
  }
  {
    CspLocalMetropolisChain owned(fg, 6);
    CspLocalMetropolisChain shared_chain(shared, 6);
    Config xa = x0, xb = x0;
    for (std::int64_t t = 0; t < kSteps; ++t) {
      owned.step(xa, t);
      shared_chain.step(xb, t);
      ASSERT_EQ(xa, xb) << "t=" << t;
    }
  }
}

// --- Facade: sample_csp / sample_many_csp ---------------------------------

TEST(CspFacade, SampleCspIndependentOfThreadCount) {
  const auto g = graph::make_grid(4, 4);
  const FactorGraph fg = make_dominating_set(*g, 0.8);
  const Config x0(16, 1);
  core::SamplerOptions opt;
  opt.rounds = 40;
  opt.seed = 99;
  for (const auto algorithm : {core::Algorithm::luby_glauber,
                               core::Algorithm::local_metropolis}) {
    opt.algorithm = algorithm;
    opt.num_threads = 1;
    const auto base = core::sample_csp(fg, x0, opt);
    EXPECT_EQ(base.rounds, 40);
    EXPECT_TRUE(base.feasible);
    for (int threads : thread_counts()) {
      opt.num_threads = threads;
      const auto r = core::sample_csp(fg, x0, opt);
      EXPECT_EQ(base.config, r.config) << "threads=" << threads;
    }
  }
}

TEST(CspFacade, ReplicaBatchMatchesSequentialLoop) {
  const FactorGraph fg = make_dominating_set(*graph::make_cycle(10), 1.1);
  const Config x0(10, 1);
  core::SamplerOptions opt;
  opt.algorithm = core::Algorithm::local_metropolis;
  opt.rounds = 30;
  opt.seed = 7;
  opt.num_replicas = 6;
  opt.num_threads = 1;
  const auto batch = core::sample_many_csp(fg, x0, opt);
  ASSERT_EQ(batch.configs.size(), 6u);
  int feasible = 0;
  for (int r = 0; r < 6; ++r) {
    core::SamplerOptions single = opt;
    single.num_replicas = 1;
    single.seed = chains::replica_seed(7, static_cast<std::uint64_t>(r));
    const auto one = core::sample_csp(fg, x0, single);
    EXPECT_EQ(one.config, batch.configs[static_cast<std::size_t>(r)])
        << "replica " << r;
    feasible += one.feasible ? 1 : 0;
  }
  EXPECT_EQ(batch.feasible_count, feasible);
  // And the whole batch is thread-count invariant.
  for (int threads : thread_counts()) {
    core::SamplerOptions threaded = opt;
    threaded.num_threads = threads;
    const auto b = core::sample_many_csp(fg, x0, threaded);
    EXPECT_EQ(batch.configs, b.configs) << "threads=" << threads;
    EXPECT_EQ(batch.feasible_count, b.feasible_count);
  }
}

// --- Validation errors, by message ----------------------------------------

template <typename F>
std::string thrown_message(F&& f) {
  try {
    f();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

TEST(CspValidation, ZeroVertexActivityNamesTheVertexAtConstruction) {
  FactorGraph fg(4, 2);
  const std::string msg = thrown_message(
      [&] { fg.set_vertex_activity(2, {0.0, 0.0}); });
  EXPECT_NE(msg.find("vertex activity of vertex 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("identically zero"), std::string::npos) << msg;
}

TEST(CspValidation, FacadeRequiresRoundsAndChainBackend) {
  const FactorGraph fg = make_dominating_set(*graph::make_path(3), 1.0);
  const Config x0(3, 1);
  core::SamplerOptions opt;
  const std::string no_rounds =
      thrown_message([&] { (void)core::sample_csp(fg, x0, opt); });
  EXPECT_NE(no_rounds.find("explicit round budget"), std::string::npos)
      << no_rounds;
  opt.rounds = 10;
  opt.backend = core::Backend::local_network;
  const std::string backend =
      thrown_message([&] { (void)core::sample_many_csp(fg, x0, opt); });
  EXPECT_NE(backend.find("chain backend"), std::string::npos) << backend;
  opt.backend = core::Backend::chain;
  const std::string bad_config = thrown_message(
      [&] { (void)core::sample_csp(fg, Config(2, 0), opt); });
  EXPECT_NE(bad_config.find("config size mismatch"), std::string::npos)
      << bad_config;
}

}  // namespace
}  // namespace lsample::csp
