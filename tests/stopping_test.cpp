// Adaptive stopping (chains/stopping.hpp + the facade's SamplerOptions.stop):
// unit behavior of the schedule/parser, the determinism contract (decisions
// bit-identical at any thread count and any replica batch size), CFTP
// exactness against exact enumeration, trajectory-prefix semantics of the
// coupling rule, and the never-hang guarantee (named StoppingError).
#include "chains/stopping.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "chains/replicas.hpp"
#include "core/sampler.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "inference/state_space.hpp"
#include "mrf/models.hpp"
#include "util/summary.hpp"

namespace lsample::chains {
namespace {

TEST(CheckpointSchedule, DoublesAndAlwaysEndsAtMax) {
  const auto s = checkpoint_schedule(8, 100);
  const std::vector<std::int64_t> want{8, 16, 32, 64, 100};
  EXPECT_EQ(s, want);
  // max_rounds below the first checkpoint: a single decision at the budget.
  const auto tiny = checkpoint_schedule(8, 5);
  const std::vector<std::int64_t> want_tiny{5};
  EXPECT_EQ(tiny, want_tiny);
  // Exact power-of-two budget must not duplicate the final checkpoint.
  const auto pow2 = checkpoint_schedule(8, 32);
  const std::vector<std::int64_t> want_pow2{8, 16, 32};
  EXPECT_EQ(pow2, want_pow2);
  EXPECT_THROW((void)checkpoint_schedule(0, 10), std::invalid_argument);
  EXPECT_THROW((void)checkpoint_schedule(8, 0), std::invalid_argument);
}

TEST(ParseStopRule, RoundTripsEveryName) {
  for (const StopRule rule : {StopRule::fixed, StopRule::coupling,
                              StopRule::cftp, StopRule::rhat,
                              StopRule::automatic}) {
    const auto parsed = parse_stop_rule(stop_rule_name(rule));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, rule);
  }
  EXPECT_EQ(parse_stop_rule("automatic"), StopRule::automatic);
  EXPECT_FALSE(parse_stop_rule("adaptive").has_value());
  EXPECT_FALSE(parse_stop_rule("").has_value());
}

TEST(IsHardcoreShaped, AcceptsHardcoreRejectsOthers) {
  const auto g = graph::make_cycle(5);
  EXPECT_TRUE(is_hardcore_shaped(mrf::make_hardcore(g, 0.7)));
  EXPECT_FALSE(is_hardcore_shaped(mrf::make_proper_coloring(g, 3)));
  EXPECT_FALSE(is_hardcore_shaped(mrf::make_ising(g, 0.2, 0.0)));
}

// ---------------------------------------------------------------------------
// Determinism: the stopping decision (rule, rounds_used, stopped_early) and
// the sampled configuration are pure functions of (model, seed, rule) —
// bit-identical at any num_threads.

struct Decision {
  StopRule rule;
  std::int64_t rounds_used;
  std::int64_t budget;
  bool early;
  mrf::Config config;
  bool operator==(const Decision&) const = default;
};

Decision decide_coloring(int num_threads, StopRule rule, std::uint64_t seed) {
  util::Rng grng(11);
  const auto g = graph::make_random_regular(48, 4, grng);
  core::SamplerOptions opt;
  opt.algorithm = core::Algorithm::luby_glauber;
  opt.seed = seed;
  opt.stop = rule;
  opt.num_threads = num_threads;
  const auto res = core::sample_coloring(g, 16, opt);
  return {res.stop_rule, res.rounds_used, res.budget_rounds,
          res.stopped_early, res.config};
}

TEST(StoppingDeterminism, ColoringDecisionsThreadInvariant) {
  for (const StopRule rule :
       {StopRule::coupling, StopRule::rhat, StopRule::automatic}) {
    const Decision base = decide_coloring(1, rule, 7);
    EXPECT_GT(base.rounds_used, 0);
    EXPECT_LE(base.rounds_used, base.budget);
    for (const int threads : {2, 4, 0})
      EXPECT_EQ(decide_coloring(threads, rule, 7), base)
          << "rule " << stop_rule_name(rule) << " threads " << threads;
  }
}

Decision decide_hardcore(int num_threads, std::uint64_t seed) {
  const auto g = graph::make_grid(4, 4);
  core::SamplerOptions opt;
  opt.seed = seed;
  opt.stop = StopRule::cftp;
  opt.num_threads = num_threads;
  const auto res = core::sample_hardcore(g, 0.5, opt);
  return {res.stop_rule, res.rounds_used, res.budget_rounds,
          res.stopped_early, res.config};
}

TEST(StoppingDeterminism, CftpDecisionThreadInvariant) {
  const Decision base = decide_hardcore(1, 21);
  EXPECT_EQ(base.rule, StopRule::cftp);
  EXPECT_TRUE(base.early);
  EXPECT_GT(base.rounds_used, 0);
  for (const int threads : {2, 4, 0})
    EXPECT_EQ(decide_hardcore(threads, 21), base);
}

// The decision must not change with the caller's replica batch size: the
// diagnostic fleet is fixed, so sample_many at R = 1, 2, 4 reports one and
// the same (rounds_used, stopped_early), and replica r's sample matches the
// single-sample call with replica_seed(seed, r).
TEST(StoppingDeterminism, BatchSizeInvariant) {
  util::Rng grng(13);
  const auto g = graph::make_random_regular(36, 4, grng);
  for (const StopRule rule : {StopRule::coupling, StopRule::rhat}) {
    std::int64_t rounds_used = -1;
    bool early = false;
    std::vector<mrf::Config> first_config;
    for (const int replicas : {1, 2, 4}) {
      core::SamplerOptions opt;
      opt.algorithm = core::Algorithm::luby_glauber;
      opt.seed = 31;
      opt.stop = rule;
      opt.num_replicas = replicas;
      const auto batch = core::sample_many_colorings(g, 14, opt);
      if (rounds_used < 0) {
        rounds_used = batch.rounds_used;
        early = batch.stopped_early;
        first_config.push_back(batch.configs[0]);
      }
      EXPECT_EQ(batch.rounds_used, rounds_used)
          << "rule " << stop_rule_name(rule) << " R=" << replicas;
      EXPECT_EQ(batch.stopped_early, early);
      EXPECT_EQ(batch.configs[0], first_config[0]);
    }
  }
}

// ---------------------------------------------------------------------------
// Semantics: the coupling rule's payload trajectory is the fixed-budget
// trajectory truncated at rounds_used — early stopping changes WHEN you
// stop, never WHAT chain you run.

TEST(StoppingSemantics, CouplingIsPrefixOfFixedTrajectory) {
  util::Rng grng(17);
  const auto g = graph::make_random_regular(40, 4, grng);
  core::SamplerOptions opt;
  opt.algorithm = core::Algorithm::luby_glauber;
  opt.seed = 9;
  opt.stop = StopRule::coupling;
  const auto adaptive = core::sample_coloring(g, 16, opt);
  ASSERT_GT(adaptive.rounds_used, 0);
  opt.stop = StopRule::fixed;
  opt.rounds = adaptive.rounds_used;
  const auto fixed = core::sample_coloring(g, 16, opt);
  EXPECT_EQ(adaptive.config, fixed.config);
}

// ---------------------------------------------------------------------------
// CFTP exactness: empirical distribution over many perfect samples matches
// exact enumeration in total variation.

TEST(StoppingCftp, MatchesExactEnumeration) {
  const auto g = graph::make_path(5);
  const mrf::Mrf m = mrf::make_hardcore(g, 0.8);
  const inference::StateSpace ss(m.n(), m.q());
  const auto mu = inference::gibbs_distribution(m, ss);
  const int samples = 6000;
  std::vector<double> hist(mu.size(), 0.0);
  std::int64_t max_horizon_seen = 0;
  for (int s = 0; s < samples; ++s) {
    const auto r = cftp_hardcore(m, replica_seed(555, s), 4, 1 << 12);
    hist[static_cast<std::size_t>(ss.encode(r.config))] += 1.0 / samples;
    max_horizon_seen = std::max(max_horizon_seen, r.horizon);
  }
  const double tv = util::total_variation(hist, mu);
  // Noise floor ~ sqrt(|support|/samples) / 2 = 0.026 for 16 feasible
  // states at 6000 samples; a biased sampler sits well above 0.05.
  EXPECT_LT(tv, 0.05);
  EXPECT_LT(max_horizon_seen, 1 << 10);
}

// ---------------------------------------------------------------------------
// Never-hang: an instance outside the fast-coalescence regime throws the
// named StoppingError at the horizon cap instead of spinning.

TEST(StoppingCftp, TorpidInstanceThrowsNamedError) {
  util::Rng grng(23);
  const auto g = graph::make_random_regular(60, 5, grng);
  const mrf::Mrf m = mrf::make_hardcore(g, 6.0);  // far above lambda_c
  EXPECT_THROW((void)cftp_hardcore(m, 3, 4, 64), StoppingError);
  // Through the facade: rounds supplies the cap.
  core::SamplerOptions opt;
  opt.seed = 3;
  opt.stop = StopRule::cftp;
  opt.rounds = 64;
  EXPECT_THROW((void)core::sample_hardcore(g, 6.0, opt), StoppingError);
}

// ---------------------------------------------------------------------------
// Facade plumbing: rule resolution, regime validation, CSP entry points.

TEST(StoppingFacade, AutomaticResolvesPerModelClass) {
  const auto g = graph::make_grid(3, 3);
  core::SamplerOptions opt;
  opt.algorithm = core::Algorithm::luby_glauber;
  opt.seed = 5;
  opt.stop = StopRule::automatic;
  EXPECT_EQ(core::sample_hardcore(g, 0.4, opt).stop_rule, StopRule::cftp);
  EXPECT_EQ(core::sample_coloring(g, 9, opt).stop_rule, StopRule::coupling);
  const auto fg = csp::make_dominating_set(*graph::make_cycle(8), 1.0);
  const csp::Config x0(8, 1);
  opt.rounds = 200;
  EXPECT_EQ(core::sample_csp(fg, x0, opt).stop_rule, StopRule::rhat);
}

TEST(StoppingFacade, CspRejectsCouplingRules) {
  const auto fg = csp::make_dominating_set(*graph::make_path(4), 1.0);
  const csp::Config x0(4, 1);
  core::SamplerOptions opt;
  opt.rounds = 100;
  for (const StopRule rule : {StopRule::coupling, StopRule::cftp}) {
    opt.stop = rule;
    EXPECT_THROW((void)core::sample_csp(fg, x0, opt), std::invalid_argument);
    EXPECT_THROW((void)core::sample_many_csp(fg, x0, opt),
                 std::invalid_argument);
  }
}

TEST(StoppingFacade, CspDecisionsThreadAndBatchInvariant) {
  const auto fg = csp::make_dominating_set(*graph::make_cycle(12), 1.5);
  const csp::Config x0(12, 1);
  core::SamplerOptions opt;
  opt.rounds = 400;
  opt.seed = 77;
  opt.stop = StopRule::rhat;
  const auto base = core::sample_csp(fg, x0, opt);
  EXPECT_GT(base.rounds_used, 0);
  EXPECT_LE(base.rounds_used, base.budget_rounds);
  for (const int threads : {2, 0}) {
    opt.num_threads = threads;
    const auto res = core::sample_csp(fg, x0, opt);
    EXPECT_EQ(res.rounds_used, base.rounds_used);
    EXPECT_EQ(res.config, base.config);
  }
  // Batch replica r is seeded replica_seed(seed, r) (not the base seed), so
  // configs[0] is compared across batch sizes; the DECISION stays keyed to
  // the base seed and must match the single-sample call exactly.
  opt.num_threads = 1;
  std::vector<mrf::Config> replica0;
  for (const int replicas : {1, 3}) {
    opt.num_replicas = replicas;
    const auto batch = core::sample_many_csp(fg, x0, opt);
    EXPECT_EQ(batch.rounds_used, base.rounds_used);
    replica0.push_back(batch.configs[0]);
  }
  EXPECT_EQ(replica0[0], replica0[1]);
}

TEST(StoppingFacade, FixedRuleReportsNoSavings) {
  const auto g = graph::make_cycle(10);
  core::SamplerOptions opt;
  opt.algorithm = core::Algorithm::luby_glauber;
  opt.seed = 2;
  const auto res = core::sample_coloring(g, 6, opt);
  EXPECT_EQ(res.stop_rule, StopRule::fixed);
  EXPECT_FALSE(res.stopped_early);
  EXPECT_EQ(res.rounds_used, res.rounds);
  EXPECT_EQ(res.budget_rounds, res.rounds);
}

TEST(StoppingFacade, LocalNetworkBackendRejectsAdaptive) {
  const auto g = graph::make_cycle(8);
  core::SamplerOptions opt;
  opt.backend = core::Backend::local_network;
  opt.stop = StopRule::coupling;
  EXPECT_THROW((void)core::sample_coloring(g, 6, opt), std::invalid_argument);
}

}  // namespace
}  // namespace lsample::chains
