// Spectral-gap analysis cross-validated against closed forms and the exact
// mixing times.
#include "inference/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "inference/transition.hpp"
#include "mrf/models.hpp"

namespace lsample::inference {
namespace {

TEST(Spectral, TwoStateChainHasKnownEigenvalue) {
  // P = [[1-a, a], [b, 1-b]]: lambda_2 = 1 - a - b, mu = (b, a)/(a+b).
  const double a = 0.3;
  const double b = 0.2;
  DenseMatrix p(2);
  p.at(0, 0) = 1 - a;
  p.at(0, 1) = a;
  p.at(1, 0) = b;
  p.at(1, 1) = 1 - b;
  const std::vector<double> mu = {b / (a + b), a / (a + b)};
  const auto s = spectral_summary(p, mu);
  EXPECT_NEAR(s.lambda_star, 1.0 - a - b, 1e-9);
  EXPECT_NEAR(s.gap, a + b, 1e-9);
  EXPECT_NEAR(s.relaxation_time, 1.0 / (a + b), 1e-6);
}

TEST(Spectral, RejectsNonReversibleChains) {
  // A 3-cycle rotation is stationary for uniform but not reversible.
  DenseMatrix p(3);
  p.at(0, 1) = 1.0;
  p.at(1, 2) = 1.0;
  p.at(2, 0) = 1.0;
  const std::vector<double> mu = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  EXPECT_THROW((void)spectral_summary(p, mu), std::invalid_argument);
}

TEST(Spectral, UpperBoundDominatesExactMixingTime) {
  for (const auto& m :
       {mrf::make_proper_coloring(graph::make_path(4), 4),
        mrf::make_hardcore(graph::make_cycle(5), 1.0),
        mrf::make_ising(graph::make_path(4), 0.5)}) {
    const StateSpace ss(m.n(), m.q());
    const auto mu = gibbs_distribution(m, ss);
    for (const auto& p : {luby_glauber_transition(m, ss),
                          local_metropolis_transition(m, ss)}) {
      const auto s = spectral_summary(p, mu);
      ASSERT_GT(s.gap, 0.0);
      const double bound = spectral_mixing_upper_bound(s, mu, 0.01);
      const auto exact = exact_mixing_time(p, mu, 0.01, 5000);
      EXPECT_LE(static_cast<double>(exact), bound + 1.0);
    }
  }
}

TEST(Spectral, GapTracksColorCount) {
  // More colors -> larger gap for LocalMetropolis on a fixed path.
  double prev_gap = 0.0;
  for (int q : {4, 6, 8}) {
    const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(3), q);
    const StateSpace ss(3, q);
    const auto mu = gibbs_distribution(m, ss);
    const auto s = spectral_summary(local_metropolis_transition(m, ss), mu);
    EXPECT_GT(s.gap, prev_gap);
    prev_gap = s.gap;
  }
}

TEST(Spectral, ParallelChainsHaveLargerGapThanGlauber) {
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(4), 6);
  const StateSpace ss(4, 6);
  const auto mu = gibbs_distribution(m, ss);
  const double gap_glauber =
      spectral_summary(glauber_transition(m, ss), mu).gap;
  const double gap_luby =
      spectral_summary(luby_glauber_transition(m, ss), mu).gap;
  const double gap_lm =
      spectral_summary(local_metropolis_transition(m, ss), mu).gap;
  EXPECT_GT(gap_luby, gap_glauber);
  EXPECT_GT(gap_lm, gap_glauber);
}

}  // namespace
}  // namespace lsample::inference
