#include "mrf/mrf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "mrf/models.hpp"

namespace lsample::mrf {
namespace {

TEST(ActivityMatrix, ValidatesEntries) {
  EXPECT_THROW(ActivityMatrix(2, {1.0, 0.5, 0.7, 1.0}),
               std::invalid_argument);  // asymmetric
  EXPECT_THROW(ActivityMatrix(2, {0.0, 0.0, 0.0, 0.0}),
               std::invalid_argument);  // identically zero
  const ActivityMatrix a(2, {2.0, 1.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(a.max_entry(), 2.0);
  EXPECT_DOUBLE_EQ(a.normalized_at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.normalized_at(0, 1), 0.5);
}

TEST(Mrf, DefaultIsUniformOverAllConfigs) {
  const Mrf m(graph::make_path(3), 2);
  EXPECT_TRUE(m.feasible({0, 0, 0}));
  EXPECT_TRUE(m.feasible({1, 1, 1}));
  EXPECT_DOUBLE_EQ(m.log_weight({0, 1, 0}), 0.0);
}

TEST(Mrf, LogWeightMatchesHandComputation) {
  auto g = graph::make_path(3);
  Mrf m = make_ising(g, 0.5, 0.25);
  // w(+,+,-) = A(1,1) A(1,0) b(1) b(1) b(0)
  //          = e^{0.5} e^{-0.5} e^{0.25} e^{0.25} e^{-0.25}.
  const double expected = 0.5 - 0.5 + 0.25 + 0.25 - 0.25;
  EXPECT_NEAR(m.log_weight({1, 1, 0}), expected, 1e-12);
}

TEST(Mrf, InfeasibleHasMinusInfinityLogWeight) {
  const Mrf m = make_proper_coloring(graph::make_path(2), 3);
  EXPECT_TRUE(std::isinf(m.log_weight({1, 1})));
  EXPECT_FALSE(m.feasible({1, 1}));
  EXPECT_TRUE(m.feasible({1, 2}));
}

TEST(Mrf, MarginalWeightsMatchFormula) {
  // Star center with 2 leaves, coloring q=3: center marginal excludes leaf
  // colors.
  const Mrf m = make_proper_coloring(graph::make_star(2), 3);
  std::vector<double> w;
  m.marginal_weights(0, {0, 1, 2}, w);
  EXPECT_DOUBLE_EQ(w[0], 1.0);  // leaves hold 1 and 2
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 0.0);
  m.marginal_weights(0, {0, 1, 1}, w);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 1.0);
}

TEST(Mrf, MarginalIncludesVertexActivity) {
  auto g = graph::make_path(2);
  Mrf m = make_hardcore(g, 2.5);
  std::vector<double> w;
  m.marginal_weights(0, {0, 0}, w);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 2.5);
  m.marginal_weights(0, {0, 1}, w);  // neighbor occupied blocks occupation
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(Mrf, EdgePassProbMatchesColoringRules) {
  const Mrf m = make_proper_coloring(graph::make_path(2), 3);
  // pass iff sigma_u != sigma_v, X_u != sigma_v, sigma_u != X_v.
  EXPECT_DOUBLE_EQ(m.edge_pass_prob(0, 0, 1, 2, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.edge_pass_prob(0, 0, 0, 1, 2), 0.0);  // rule 2
  EXPECT_DOUBLE_EQ(m.edge_pass_prob(0, 0, 1, 1, 2), 0.0);  // rule 1 at v
  EXPECT_DOUBLE_EQ(m.edge_pass_prob(0, 0, 1, 2, 0), 0.0);  // rule 3
}

TEST(Mrf, EdgePassProbIsSoftForIsing) {
  auto g = graph::make_path(2);
  Mrf m = make_ising(g, 1.0);
  const double p = m.edge_pass_prob(0, 0, 1, 0, 1);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(Mrf, MarginalsAlwaysDefinedForColoringAboveThreshold) {
  // Path: Delta = 2; q = 3 >= Delta + 1 keeps the Glauber marginal defined.
  const Mrf m3 = make_proper_coloring(graph::make_path(3), 3);
  EXPECT_TRUE(m3.marginals_always_defined_at(1));
  // q = 2 on a degree-2 vertex can be blocked entirely.
  const Mrf m2 = make_proper_coloring(graph::make_path(3), 2);
  EXPECT_FALSE(m2.marginals_always_defined_at(1));
}

TEST(Mrf, RejectsInvalidActivitySettings) {
  auto g = graph::make_path(2);
  Mrf m(g, 3);
  EXPECT_THROW(m.set_vertex_activity(0, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(m.set_vertex_activity(0, {0.0, 0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(m.set_vertex_activity(5, {1.0, 1.0, 1.0}),
               std::invalid_argument);
  ActivityMatrix wrong_size(2, {1.0, 1.0, 1.0, 1.0});
  EXPECT_THROW(m.set_all_edge_activities(wrong_size), std::invalid_argument);
}

TEST(Models, HardcoreUniquenessThreshold) {
  // lambda_c(Delta) = (Delta-1)^(Delta-1) / (Delta-2)^Delta.
  EXPECT_NEAR(hardcore_uniqueness_threshold(3), 4.0, 1e-12);
  EXPECT_NEAR(hardcore_uniqueness_threshold(6), std::pow(5.0, 5) / std::pow(4.0, 6),
              1e-12);
  // Uniform independent sets (lambda = 1) are non-unique for Delta >= 6.
  EXPECT_GT(1.0, hardcore_uniqueness_threshold(6));
  EXPECT_LT(1.0, hardcore_uniqueness_threshold(5));
}

TEST(Models, ListColoringRestrictsColors) {
  auto g = graph::make_path(2);
  const Mrf m = make_list_coloring(g, 4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(m.feasible({0, 2}));
  EXPECT_FALSE(m.feasible({2, 2}));  // 2 not in vertex 0's list
  EXPECT_FALSE(m.feasible({0, 0}));
}

}  // namespace
}  // namespace lsample::mrf
