// CompiledMrf must be a *value-identical* view of Mrf: same marginal weight
// vectors (bit-for-bit, since the sampling kernels compare doubles exactly),
// same filter probabilities, plus actual table deduplication.  Also covers
// the CSR accessors the view is built on.
#include "mrf/compiled.hpp"

#include <gtest/gtest.h>

#include "chains/glauber.hpp"
#include "chains/kernels.hpp"
#include "chains/local_metropolis.hpp"
#include "graph/generators.hpp"
#include "mrf/models.hpp"
#include "util/rng.hpp"

namespace lsample::mrf {
namespace {

Config random_config(const Mrf& m, std::uint64_t seed) {
  util::Rng rng(seed);
  Config x(static_cast<std::size_t>(m.n()));
  for (auto& s : x) s = rng.uniform_int(m.q());
  return x;
}

TEST(CompiledMrf, DedupsSharedTables) {
  const Mrf coloring =
      make_proper_coloring(graph::make_torus(6, 6), 5);
  const CompiledMrf cc(coloring);
  EXPECT_EQ(cc.num_tables(), 1);  // all 72 edges share one table

  // Distinct per-edge activities stay distinct.
  auto g = graph::make_cycle(4);
  Mrf m(g, 2);
  for (int e = 0; e < g->num_edges(); ++e) {
    ActivityMatrix a(2);
    a.set(0, 0, 1.0 + e);
    a.set(0, 1, 1.0);
    a.set(1, 1, 1.0);
    a.freeze();
    m.set_edge_activity(e, a);
  }
  const CompiledMrf cm(m);
  EXPECT_EQ(cm.num_tables(), g->num_edges());
  for (int e = 0; e < g->num_edges(); ++e)
    EXPECT_DOUBLE_EQ(cm.table(e)[0], 1.0 + e);
}

TEST(CompiledMrf, MarginalWeightsBitIdentical) {
  util::Rng grng(3);
  const auto g = graph::make_random_regular(30, 4, grng);
  for (auto model :
       {make_proper_coloring(g, 9), make_hardcore(g, 0.7), make_ising(g, 0.4)}) {
    const CompiledMrf cm(model);
    std::vector<double> want, got;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      const Config x = random_config(model, seed);
      for (int v = 0; v < model.n(); ++v) {
        model.marginal_weights(v, x, want);
        cm.marginal_weights(v, x, got);
        ASSERT_EQ(want.size(), got.size());
        for (std::size_t c = 0; c < want.size(); ++c)
          ASSERT_EQ(want[c], got[c]) << "v=" << v << " c=" << c;  // exact
      }
    }
  }
}

TEST(CompiledMrf, MarginalWeightsBitIdenticalWithAsymmetricTolerance) {
  // ActivityMatrix accepts entries symmetric only up to 1e-12, so the
  // compiled kernel must not substitute A(j,i) for A(i,j).
  auto g = graph::make_path(3);
  Mrf m(g, 2);
  // Introduce a sub-tolerance asymmetry through the raw-entries constructor.
  std::vector<double> entries = {0.25, 0.5, 0.5 * (1.0 + 1e-13), 1.0};
  const ActivityMatrix asym(2, std::move(entries));
  m.set_all_edge_activities(asym);
  const CompiledMrf cm(m);
  std::vector<double> want, got;
  for (int s0 : {0, 1})
    for (int s1 : {0, 1})
      for (int s2 : {0, 1}) {
        const Config x = {s0, s1, s2};
        for (int v = 0; v < 3; ++v) {
          m.marginal_weights(v, x, want);
          cm.marginal_weights(v, x, got);
          for (std::size_t c = 0; c < want.size(); ++c)
            ASSERT_EQ(want[c], got[c]);
        }
      }
}

TEST(CompiledMrf, EdgePassProbBitIdentical) {
  util::Rng grng(5);
  const auto g = graph::make_erdos_renyi(24, 0.2, grng);
  const Mrf m = make_proper_coloring(g, 6);
  const CompiledMrf cm(m);
  util::Rng rng(11);
  for (int e = 0; e < g->num_edges(); ++e)
    for (int rep = 0; rep < 8; ++rep) {
      const int su = rng.uniform_int(6), sv = rng.uniform_int(6);
      const int xu = rng.uniform_int(6), xv = rng.uniform_int(6);
      ASSERT_EQ(m.edge_pass_prob(e, su, sv, xu, xv),
                cm.edge_pass_prob(e, su, sv, xu, xv));
    }
}

TEST(CompiledMrf, KernelsMatchLegacyHelpers) {
  const auto g = graph::make_torus(5, 5);
  const Mrf m = make_proper_coloring(g, 8);
  const CompiledMrf cm(m);
  const util::CounterRng rng(17);
  std::vector<double> scratch_new;
  std::vector<double> scratch_old;
  std::vector<int> nbr_spins;
  for (std::uint64_t seed : {4ull, 8ull}) {
    const Config x = random_config(m, seed);
    for (int v = 0; v < m.n(); ++v)
      for (std::int64_t t = 0; t < 5; ++t) {
        chains::gather_neighbor_spins(m, v, x, nbr_spins);
        const int want = chains::heat_bath_resample(
            m, rng, v, t, nbr_spins, scratch_old,
            x[static_cast<std::size_t>(v)]);
        const int got = chains::heat_bath_kernel(cm, rng, v, t, x, scratch_new);
        ASSERT_EQ(want, got) << "v=" << v << " t=" << t;
        ASSERT_EQ(chains::metropolis_proposal(m, rng, v, t),
                  chains::proposal_kernel(cm, rng, v, t));
      }
  }
}

TEST(CompiledMrf, CsrMatchesSpanApi) {
  util::Rng grng(9);
  const auto g = graph::make_erdos_renyi(20, 0.3, grng);
  g->finalize();
  const auto off = g->csr_offsets();
  const auto inc = g->incident_edges_flat();
  const auto nbr = g->neighbors_flat();
  ASSERT_EQ(off.size(), static_cast<std::size_t>(g->num_vertices()) + 1);
  ASSERT_EQ(inc.size(), 2 * static_cast<std::size_t>(g->num_edges()));
  for (int v = 0; v < g->num_vertices(); ++v) {
    const auto inc_v = g->incident_edges(v);
    const auto nbr_v = g->neighbors(v);
    ASSERT_EQ(static_cast<int>(inc_v.size()), g->degree(v));
    for (std::size_t i = 0; i < inc_v.size(); ++i) {
      const std::size_t flat =
          static_cast<std::size_t>(off[static_cast<std::size_t>(v)]) + i;
      EXPECT_EQ(inc[flat], inc_v[i]);
      EXPECT_EQ(nbr[flat], nbr_v[i]);
      EXPECT_EQ(g->other_endpoint(inc_v[i], v), nbr_v[i]);
    }
  }
}

}  // namespace
}  // namespace lsample::mrf
