// Grand-coupling estimators: coalescence, disagreement decay, and empirical
// projections against exact ground truth — plus censored-trial accounting and
// bit-identity of the trial-parallel replica path against the sequential
// trial loop.
#include "chains/coupling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "chains/replicas.hpp"
#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "inference/tree_bp.hpp"
#include "mrf/models.hpp"
#include "util/summary.hpp"

namespace lsample::chains {
namespace {

ChainFactory lm_factory(const mrf::Mrf& m) {
  return [&m](std::uint64_t seed) {
    return std::unique_ptr<Chain>(new LocalMetropolisChain(m, seed));
  };
}

ChainFactory lg_factory(const mrf::Mrf& m) {
  return [&m](std::uint64_t seed) {
    return std::unique_ptr<Chain>(new LubyGlauberChain(m, seed));
  };
}

TEST(Coalescence, HappensFastForManyColors) {
  const auto g = graph::make_cycle(16);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 12);
  const Config x0 = constant_config(m, 0);
  const Config y0 = greedy_feasible_config(m);
  CoalescenceOptions opt;
  opt.trials = 10;
  opt.max_rounds = 5000;
  const auto res = coalescence_time(lm_factory(m), x0, y0, opt);
  EXPECT_EQ(res.censored, 0);
  EXPECT_GT(res.mean(), 0.0);
  EXPECT_LT(res.quantile(0.9), 5000.0);
}

TEST(Coalescence, CoalescedChainsStayTogether) {
  // After coalescence the grand coupling is identical forever; verify by
  // running past the coalescence time.
  const auto g = graph::make_path(10);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 8);
  auto a = LocalMetropolisChain(m, 42);
  auto b = LocalMetropolisChain(m, 42);
  Config x = constant_config(m, 0);
  Config y = greedy_feasible_config(m);
  std::int64_t t = 0;
  while (x != y && t < 5000) {
    a.step(x, t);
    b.step(y, t);
    ++t;
  }
  ASSERT_EQ(x, y) << "no coalescence within budget";
  for (int more = 0; more < 50; ++more) {
    a.step(x, t);
    b.step(y, t);
    ++t;
    EXPECT_EQ(x, y);
  }
}

TEST(DisagreementCurve, StartsAtInitialHammingAndShrinks) {
  const auto g = graph::make_cycle(20);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 14);
  const Config x0 = constant_config(m, 0);
  const Config y0 = greedy_feasible_config(m);
  const auto curve =
      disagreement_curve(lm_factory(m), x0, y0, 8, 60, 5);
  const double init =
      static_cast<double>(hamming_distance(x0, y0)) / x0.size();
  EXPECT_NEAR(curve.front(), init, 1e-12);
  EXPECT_LT(curve.back(), 0.05);
}

TEST(DisagreementCurve, LubyGlauberAlsoContracts) {
  const auto g = graph::make_cycle(20);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 7);  // q > 2*Delta = 4
  const Config x0 = constant_config(m, 0);
  const Config y0 = greedy_feasible_config(m);
  const auto curve = disagreement_curve(lg_factory(m), x0, y0, 8, 150, 7);
  EXPECT_LT(curve.back(), 0.05);
}

TEST(EmpiricalPmf, MatchesExactMarginalOnTinyModel) {
  // Hardcore on a path of 3, lambda = 1: exact occupancy of the middle
  // vertex is 2/8 (IS of P3: {}, {0}, {1}, {2}, {0,2} -> but weight by
  // counts: 5 sets, middle occupied in 1 of them -> 1/5).
  const auto g = graph::make_path(3);
  const mrf::Mrf m = mrf::make_hardcore(g, 1.0);
  const Config x0 = constant_config(m, 0);
  const auto pmf = empirical_pmf(
      lm_factory(m), x0, 60, 4000,
      [](const Config& x) { return x[1]; }, 2, 11);
  EXPECT_NEAR(pmf[1], 0.2, 0.03);
}

TEST(EmpiricalPmf, MatchesTreeBpOnPathColoring) {
  // q = 4 keeps LocalMetropolis acceptance high enough to mix well within
  // the round budget on a short path.
  const auto g = graph::make_path(5);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 4);
  inference::TreeBp bp(m);
  const auto exact = bp.marginal(2);
  const Config x0 = greedy_feasible_config(m);
  const auto pmf = empirical_pmf(
      lm_factory(m), x0, 300, 6000,
      [](const Config& x) { return x[2]; }, 4, 13);
  for (int c = 0; c < 4; ++c)
    EXPECT_NEAR(pmf[static_cast<std::size_t>(c)],
                exact[static_cast<std::size_t>(c)], 0.03);
}

TEST(Coalescence, CensoredTrialsAreNotAveragedIn) {
  // A 2-round budget cannot coalesce the adversarial pair on this model, so
  // (essentially) every trial censors.  Censored trials must be counted
  // separately — never pushed into `rounds` as if the budget were a
  // coalescence time.
  const auto g = graph::make_cycle(16);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 12);
  const Config x0 = constant_config(m, 0);
  const Config y0 = greedy_feasible_config(m);
  CoalescenceOptions opt;
  opt.trials = 6;
  opt.max_rounds = 2;
  const auto res = coalescence_time(lm_factory(m), x0, y0, opt);
  EXPECT_GT(res.censored, 0);
  EXPECT_EQ(res.trials(), opt.trials);
  EXPECT_EQ(static_cast<int>(res.rounds.size()), opt.trials - res.censored);
  EXPECT_EQ(res.max_rounds, opt.max_rounds);
  for (double r : res.rounds)
    EXPECT_LE(r, static_cast<double>(opt.max_rounds));
  if (res.rounds.empty()) {
    EXPECT_TRUE(std::isnan(res.mean()));
    EXPECT_TRUE(std::isnan(res.quantile(0.5)));
    EXPECT_DOUBLE_EQ(res.mean_lower_bound(),
                     static_cast<double>(opt.max_rounds));
  } else {
    // The lower bound counts censored trials at the full budget, so it can
    // only exceed the uncensored mean (censored trials ran max_rounds, the
    // longest any uncensored trial can have run).
    EXPECT_GE(res.mean_lower_bound(), res.mean());
  }
}

TEST(Coalescence, FullyCensoredStatisticsAreNaNNotThrow) {
  // Direct coverage of the all-censored corner: the uncensored statistics
  // must report NaN (not throw from util::quantile's empty-sample check),
  // and the lower-bound mean degenerates to the budget.
  CoalescenceResult res;
  res.censored = 3;
  res.max_rounds = 100;
  EXPECT_EQ(res.trials(), 3);
  EXPECT_TRUE(std::isnan(res.mean()));
  EXPECT_TRUE(std::isnan(res.quantile(0.5)));
  EXPECT_DOUBLE_EQ(res.mean_lower_bound(), 100.0);
}

TEST(Coalescence, BitIdenticalAtAnyThreadCount) {
  const auto g = graph::make_cycle(16);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 12);
  const Config x0 = constant_config(m, 0);
  const Config y0 = greedy_feasible_config(m);
  CoalescenceOptions opt;
  opt.trials = 8;
  opt.max_rounds = 5000;
  opt.num_threads = 1;
  const auto ref = coalescence_time(lm_factory(m), x0, y0, opt);
  for (int threads : {2, 4, 0}) {  // 0 = all hardware threads
    opt.num_threads = threads;
    const auto got = coalescence_time(lm_factory(m), x0, y0, opt);
    EXPECT_EQ(got.rounds, ref.rounds) << "threads=" << threads;
    EXPECT_EQ(got.censored, ref.censored) << "threads=" << threads;
  }
}

TEST(DisagreementCurve, BitIdenticalAtAnyThreadCount) {
  const auto g = graph::make_cycle(20);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 14);
  const Config x0 = constant_config(m, 0);
  const Config y0 = greedy_feasible_config(m);
  const auto ref = disagreement_curve(lm_factory(m), x0, y0, 6, 40, 5, 1);
  for (int threads : {2, 4, 0}) {
    const auto got =
        disagreement_curve(lm_factory(m), x0, y0, 6, 40, 5, threads);
    EXPECT_EQ(got, ref) << "threads=" << threads;  // exact, incl. the fp sums
  }
}

TEST(EmpiricalPmf, BitIdenticalAtAnyThreadCount) {
  const auto g = graph::make_path(5);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 4);
  const Config x0 = greedy_feasible_config(m);
  const auto statistic = [](const Config& x) { return x[2]; };
  const auto ref = empirical_pmf(lm_factory(m), x0, 40, 200, statistic, 4, 13, 1);
  for (int threads : {2, 4, 0}) {
    const auto got =
        empirical_pmf(lm_factory(m), x0, 40, 200, statistic, 4, 13, threads);
    EXPECT_EQ(got, ref) << "threads=" << threads;
  }
}

TEST(EmpiricalPmf, RejectsOutOfRangeStatistic) {
  // The category check guards a raw array index against caller-supplied
  // input, so it must be LS_REQUIRE (alive in every build mode), not an
  // internal assert.
  const auto g = graph::make_path(3);
  const mrf::Mrf m = mrf::make_hardcore(g, 1.0);
  const Config x0 = constant_config(m, 0);
  EXPECT_THROW(
      (void)empirical_pmf(
          lm_factory(m), x0, 3, 4, [](const Config&) { return 7; }, 2, 11),
      std::invalid_argument);
}

TEST(CoalescenceOptions, ValidatesInput) {
  const auto g = graph::make_path(3);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 3);
  const Config x0 = constant_config(m, 0);
  CoalescenceOptions opt;
  opt.trials = 0;
  EXPECT_THROW((void)coalescence_time(lm_factory(m), x0, x0, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace lsample::chains
