// Exhaustive option-validation coverage for the CSP facade entry points:
// every LS_REQUIRE path in sample_csp / sample_many_csp asserted by its
// message, plus the accepted boundary values right next to each rejection.
#include <gtest/gtest.h>

#include <string>

#include "core/sampler.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"

namespace lsample::core {
namespace {

using csp::Config;
using csp::FactorGraph;

template <typename F>
std::string thrown_message(F&& f) {
  try {
    f();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

// Smallest convenient model: dominating sets of a 3-path (q = 2, all-chosen
// is always feasible).
FactorGraph tiny_model() {
  return csp::make_dominating_set(*graph::make_path(3), 1.0);
}

SamplerOptions valid_options() {
  SamplerOptions opt;
  opt.rounds = 8;
  return opt;
}

TEST(FacadeCspValidation, MissingRoundBudgetIsRejectedByBothEntryPoints) {
  const FactorGraph fg = tiny_model();
  const Config x0(3, 1);
  SamplerOptions opt;  // rounds unset — no theorem budget applies to a CSP
  for (const std::string& msg :
       {thrown_message([&] { (void)sample_csp(fg, x0, opt); }),
        thrown_message([&] { (void)sample_many_csp(fg, x0, opt); })}) {
    EXPECT_NE(msg.find("explicit round budget"), std::string::npos) << msg;
  }
}

TEST(FacadeCspValidation, LocalNetworkBackendIsRejectedByBothEntryPoints) {
  const FactorGraph fg = tiny_model();
  const Config x0(3, 1);
  SamplerOptions opt = valid_options();
  opt.backend = Backend::local_network;
  for (const std::string& msg :
       {thrown_message([&] { (void)sample_csp(fg, x0, opt); }),
        thrown_message([&] { (void)sample_many_csp(fg, x0, opt); })}) {
    EXPECT_NE(msg.find("chain backend"), std::string::npos) << msg;
  }
}

TEST(FacadeCspValidation, NegativeThreadCountIsRejectedByBothEntryPoints) {
  const FactorGraph fg = tiny_model();
  const Config x0(3, 1);
  SamplerOptions opt = valid_options();
  opt.num_threads = -1;
  for (const std::string& msg :
       {thrown_message([&] { (void)sample_csp(fg, x0, opt); }),
        thrown_message([&] { (void)sample_many_csp(fg, x0, opt); })}) {
    EXPECT_NE(msg.find("num_threads must be >= 0"), std::string::npos) << msg;
  }
}

TEST(FacadeCspValidation, NonPositiveReplicaCountIsRejectedByTheBatchCall) {
  const FactorGraph fg = tiny_model();
  const Config x0(3, 1);
  SamplerOptions opt = valid_options();
  opt.num_replicas = 0;
  const std::string msg =
      thrown_message([&] { (void)sample_many_csp(fg, x0, opt); });
  EXPECT_NE(msg.find("num_replicas must be >= 1"), std::string::npos) << msg;
  // The single-sample call ignores num_replicas entirely.
  EXPECT_EQ(thrown_message([&] { (void)sample_csp(fg, x0, opt); }), "");
}

TEST(FacadeCspValidation, WrongSizeInitialConfigIsRejectedByBothEntryPoints) {
  const FactorGraph fg = tiny_model();
  const SamplerOptions opt = valid_options();
  const Config too_short(2, 1);
  for (const std::string& msg :
       {thrown_message([&] { (void)sample_csp(fg, too_short, opt); }),
        thrown_message([&] { (void)sample_many_csp(fg, too_short, opt); })}) {
    EXPECT_NE(msg.find("config size mismatch"), std::string::npos) << msg;
  }
}

TEST(FacadeCspValidation, OutOfRangeSpinIsRejectedByBothEntryPoints) {
  const FactorGraph fg = tiny_model();  // q = 2, so spin 2 is out of range
  const SamplerOptions opt = valid_options();
  const Config bad_spin = {1, 2, 1};
  for (const std::string& msg :
       {thrown_message([&] { (void)sample_csp(fg, bad_spin, opt); }),
        thrown_message([&] { (void)sample_many_csp(fg, bad_spin, opt); })}) {
    EXPECT_NE(msg.find("spin out of range"), std::string::npos) << msg;
  }
}

TEST(FacadeCspValidation, BoundaryValuesNextToEachRejectionAreAccepted) {
  const FactorGraph fg = tiny_model();
  const Config x0(3, 1);
  // num_threads = 0 ("all hardware threads") and num_replicas = 1 are the
  // accepted boundaries; both calls succeed and the zero-thread sample is
  // bit-identical to the sequential one.
  SamplerOptions opt = valid_options();
  opt.num_threads = 0;
  opt.num_replicas = 1;
  const SampleResult hw = sample_csp(fg, x0, opt);
  opt.num_threads = 1;
  const SampleResult seq = sample_csp(fg, x0, opt);
  EXPECT_EQ(hw.config, seq.config);
  EXPECT_EQ(hw.rounds, 8);
  const BatchSampleResult batch = sample_many_csp(fg, x0, opt);
  ASSERT_EQ(batch.configs.size(), 1u);
}

}  // namespace
}  // namespace lsample::core
