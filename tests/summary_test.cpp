#include "util/summary.hpp"

#include <gtest/gtest.h>

#include "util/table.hpp"

#include <sstream>
#include <vector>

namespace lsample::util {
namespace {

TEST(Summary, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.2909944487, 1e-9);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Summary, QuantileInterpolates) {
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(xs, 1.5), std::invalid_argument);
}

TEST(Summary, NormalizeHandlesZeroVector) {
  std::vector<double> v = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(normalize(v), 0.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  std::vector<double> w = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(normalize(w), 4.0);
  EXPECT_DOUBLE_EQ(w[1], 0.75);
}

TEST(Summary, TotalVariationBasics) {
  EXPECT_DOUBLE_EQ(total_variation(std::vector<double>{0.5, 0.5}, std::vector<double>{0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(total_variation(std::vector<double>{1.0, 0.0}, std::vector<double>{0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(total_variation(std::vector<double>{2.0, 2.0}, std::vector<double>{1.0, 3.0}), 0.25);
  EXPECT_THROW((void)total_variation(std::vector<double>{1.0}, std::vector<double>{0.5, 0.5}),
               std::invalid_argument);
}

TEST(Summary, LeastSquaresSlope) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
  EXPECT_NEAR(ls_slope(x, y), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(ls_slope(x, std::vector<double>{1.0, 1.0, 1.0, 1.0}), 0.0);
}

TEST(Summary, Correlation) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_NEAR(correlation(x, std::vector<double>{2.0, 4.0, 6.0}), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, std::vector<double>{3.0, 2.0, 1.0}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(correlation(x, std::vector<double>{5.0, 5.0, 5.0}), 0.0);
}

TEST(Table, PrintsAlignedMarkdown) {
  Table t({"a", "value"});
  t.begin_row().cell("x").cell(1.5, 2);
  t.begin_row().cell("long-name").cell(std::int64_t{42});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsCellWithoutRow) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), std::invalid_argument);
}

}  // namespace
}  // namespace lsample::util
