// Luby's distributed MIS protocol — the "labeling is easy" half of the
// paper's separation (discussion after Theorem 1.3).
#include "local/luby_mis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace lsample::local {
namespace {

bool is_maximal_independent_set(const graph::Graph& g,
                                const std::vector<int>& ind) {
  if (!graph::is_independent_set(g, ind)) return false;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (ind[static_cast<std::size_t>(v)] != 0) continue;
    bool dominated = false;
    for (int u : g.neighbors(v))
      if (ind[static_cast<std::size_t>(u)] != 0) dominated = true;
    if (!dominated) return false;
  }
  return true;
}

TEST(LubyMis, ProducesMaximalIndependentSets) {
  util::Rng grng(3);
  for (const auto& g :
       {graph::make_cycle(30), graph::make_grid(6, 6),
        graph::make_random_regular(40, 5, grng),
        graph::make_erdos_renyi(40, 0.15, grng)}) {
    Network net = make_luby_mis_network(g, 11);
    const auto rounds = run_luby_mis(net);
    EXPECT_LT(rounds, 10000);
    EXPECT_TRUE(is_maximal_independent_set(*g, net.outputs()));
  }
}

TEST(LubyMis, DeterministicGivenSeed) {
  const auto g = graph::make_cycle(20);
  Network a = make_luby_mis_network(g, 5);
  Network b = make_luby_mis_network(g, 5);
  (void)run_luby_mis(a);
  (void)run_luby_mis(b);
  EXPECT_EQ(a.outputs(), b.outputs());
}

TEST(LubyMis, HandlesEdgeCases) {
  // Single vertex: joins immediately.
  auto single = std::make_shared<graph::Graph>(1);
  Network net1 = make_luby_mis_network(single, 1);
  (void)run_luby_mis(net1);
  EXPECT_EQ(net1.outputs()[0], 1);
  // Complete graph: exactly one vertex joins.
  const auto k5 = graph::make_complete(5);
  Network net2 = make_luby_mis_network(k5, 1);
  (void)run_luby_mis(net2);
  int count = 0;
  for (int s : net2.outputs()) count += s;
  EXPECT_EQ(count, 1);
}

TEST(LubyMis, RoundsGrowSlowlyWithN) {
  // O(log n) w.h.p.: the round count on 16x larger graphs should grow by a
  // small additive amount, far below linear growth.
  util::Rng grng(7);
  const auto small = graph::make_random_regular(64, 4, grng);
  const auto large = graph::make_random_regular(1024, 4, grng);
  Network ns = make_luby_mis_network(small, 3);
  Network nl = make_luby_mis_network(large, 3);
  const auto rs = run_luby_mis(ns);
  const auto rl = run_luby_mis(nl);
  EXPECT_LE(rl, rs + 30);
  EXPECT_LT(static_cast<double>(rl),
            4.0 * std::log2(1024.0) + 10.0);  // comfortably logarithmic
}

}  // namespace
}  // namespace lsample::local
