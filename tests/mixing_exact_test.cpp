// Exact mixing-time checks on small models: TV to stationarity decays, the
// exact tau(eps) is finite, and LocalMetropolis needs fewer rounds than
// LubyGlauber at large q (the headline comparison, in miniature).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "inference/exact.hpp"
#include "inference/transition.hpp"
#include "mrf/models.hpp"

namespace lsample::inference {
namespace {

TEST(ExactMixing, WorstCaseTvDecreasesInT) {
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(4), 5);
  const StateSpace ss(4, 5);
  const auto mu = gibbs_distribution(m, ss);
  const auto p = local_metropolis_transition(m, ss);
  double prev = 1.0;
  for (std::int64_t t : {1, 2, 4, 8, 16, 32, 64}) {
    const double tv = worst_case_tv(p, mu, t);
    EXPECT_LE(tv, prev + 1e-12);
    prev = tv;
  }
  EXPECT_LT(prev, 1e-2);
}

TEST(ExactMixing, TauIsFiniteForBothAlgorithms) {
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_cycle(4), 5);
  const StateSpace ss(4, 5);
  const auto mu = gibbs_distribution(m, ss);
  const auto t_lg = exact_mixing_time(luby_glauber_transition(m, ss), mu,
                                      0.01, 500);
  const auto t_lm = exact_mixing_time(local_metropolis_transition(m, ss), mu,
                                      0.01, 500);
  EXPECT_LE(t_lg, 500);
  EXPECT_LE(t_lm, 500);
  EXPECT_GE(t_lg, 1);
  EXPECT_GE(t_lm, 1);
}

TEST(ExactMixing, LocalMetropolisBeatsGlauberPerRound) {
  // Per-round, the parallel chain updates ~n vertices vs 1 for Glauber, so
  // its exact mixing time in rounds must be far smaller.
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(4), 5);
  const StateSpace ss(4, 5);
  const auto mu = gibbs_distribution(m, ss);
  const auto t_glauber =
      exact_mixing_time(glauber_transition(m, ss), mu, 0.01, 2000);
  const auto t_lm =
      exact_mixing_time(local_metropolis_transition(m, ss), mu, 0.01, 2000);
  EXPECT_LT(t_lm, t_glauber);
}

TEST(ExactMixing, MoreColorsMixFasterForLocalMetropolis) {
  std::int64_t prev = 1 << 20;
  for (int q : {4, 6, 8}) {
    const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(3), q);
    const StateSpace ss(3, q);
    const auto mu = gibbs_distribution(m, ss);
    const auto t = exact_mixing_time(local_metropolis_transition(m, ss), mu,
                                     0.01, 1000);
    EXPECT_LE(t, prev);
    prev = t;
  }
}

TEST(ExactMixing, TvFromStartMatchesWorstCaseEnvelope) {
  const mrf::Mrf m = mrf::make_hardcore(graph::make_path(3), 1.0);
  const StateSpace ss(3, 2);
  const auto mu = gibbs_distribution(m, ss);
  const auto p = luby_glauber_transition(m, ss);
  const double worst = worst_case_tv(p, mu, 5);
  for (std::int64_t s = 0; s < ss.size(); ++s) {
    if (mu[static_cast<std::size_t>(s)] <= 0.0) continue;
    EXPECT_LE(tv_from_start(p, mu, s, 5), worst + 1e-12);
  }
}

// Even when started from an *infeasible* configuration, both chains are
// absorbed into the feasible region and still converge to the Gibbs
// distribution (the absorption half of Prop 3.1 / Thm 4.1).  For colorings
// this needs q >= Delta + 2 (condition (6)).
TEST(ExactMixing, ConvergesFromInfeasibleStart) {
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(3), 4);
  const StateSpace ss(3, 4);
  const auto mu = gibbs_distribution(m, ss);
  const std::int64_t bad = ss.encode({1, 1, 1});
  ASSERT_EQ(mu[static_cast<std::size_t>(bad)], 0.0);
  for (const auto& p : {luby_glauber_transition(m, ss),
                        local_metropolis_transition(m, ss)}) {
    EXPECT_LT(tv_from_start(p, mu, bad, 200), 1e-6);
  }
}

}  // namespace
}  // namespace lsample::inference
