#include "core/sampler.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace lsample::core {
namespace {

std::vector<std::vector<int>> uniform_lists(int n, int q, int size,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<int>> lists(static_cast<std::size_t>(n));
  for (auto& list : lists) {
    while (static_cast<int>(list.size()) < size) {
      const int c = rng.uniform_int(q);
      bool seen = false;
      for (int x : list) seen = seen || x == c;
      if (!seen) list.push_back(c);
    }
  }
  return lists;
}

TEST(SampleListColoring, ProducesProperListColoring) {
  const auto g = graph::make_cycle(20);  // d = 2; lists of 6 -> alpha = 1/2
  const auto lists = uniform_lists(20, 10, 6, 3);
  SamplerOptions opt;
  opt.seed = 7;
  const auto res = sample_list_coloring(g, 10, lists, opt);
  EXPECT_TRUE(res.feasible);
  EXPECT_TRUE(graph::is_proper_coloring(*g, res.config));
  // Every vertex uses a color from its own list.
  for (int v = 0; v < 20; ++v) {
    bool in_list = false;
    for (int c : lists[static_cast<std::size_t>(v)])
      in_list = in_list || c == res.config[static_cast<std::size_t>(v)];
    EXPECT_TRUE(in_list) << "vertex " << v;
  }
  EXPECT_NEAR(res.theory_alpha, 0.5, 1e-12);
}

TEST(SampleListColoring, ThrowsWhenListsTooSmallWithoutBudget) {
  const auto g = graph::make_cycle(10);
  // Lists of size 3 on degree-2 vertices: alpha = 2/(3-2) = 2 >= 1.
  const auto lists = uniform_lists(10, 8, 3, 5);
  SamplerOptions opt;
  EXPECT_THROW((void)sample_list_coloring(g, 8, lists, opt),
               std::invalid_argument);
  opt.rounds = 300;
  const auto res = sample_list_coloring(g, 8, lists, opt);
  EXPECT_TRUE(graph::is_proper_coloring(*g, res.config));
}

TEST(SampleListColoring, FullListsMatchPlainColoringModel) {
  const auto g = graph::make_path(8);
  std::vector<int> all = {0, 1, 2, 3, 4, 5};
  const std::vector<std::vector<int>> lists(8, all);
  SamplerOptions opt;
  opt.seed = 13;
  const auto res = sample_list_coloring(g, 6, lists, opt);
  EXPECT_TRUE(graph::is_proper_coloring(*g, res.config));
  // alpha should equal the plain-coloring Dobrushin alpha d/(q-d) = 2/4.
  EXPECT_NEAR(res.theory_alpha, 0.5, 1e-12);
}

}  // namespace
}  // namespace lsample::core
