// Validates the exact enumeration machinery against closed-form counts:
// proper colorings of paths/cycles and independent sets (Fibonacci/Lucas).
#include "inference/exact.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "mrf/models.hpp"

namespace lsample::inference {
namespace {

double fib(int n) {  // F(1)=1, F(2)=1, ...
  double a = 0.0;
  double b = 1.0;
  for (int i = 1; i < n; ++i) {
    const double c = a + b;
    a = b;
    b = c;
  }
  return b;
}

double lucas(int n) {  // L(1)=1, L(2)=3, ...
  double a = 2.0;
  double b = 1.0;
  for (int i = 1; i < n; ++i) {
    const double c = a + b;
    a = b;
    b = c;
  }
  return b;
}

TEST(PartitionFunction, ColoringsOfPath) {
  // Z = q (q-1)^{n-1}.
  for (int n : {2, 3, 5}) {
    for (int q : {3, 4}) {
      const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(n), q);
      const StateSpace ss(n, q);
      EXPECT_NEAR(partition_function(m, ss),
                  q * std::pow(q - 1.0, n - 1.0), 1e-9)
          << "n=" << n << " q=" << q;
    }
  }
}

TEST(PartitionFunction, ColoringsOfCycle) {
  // Z = (q-1)^n + (-1)^n (q-1).
  for (int n : {3, 4, 5, 6}) {
    for (int q : {3, 4}) {
      const mrf::Mrf m = mrf::make_proper_coloring(graph::make_cycle(n), q);
      const StateSpace ss(n, q);
      const double sign = n % 2 == 0 ? 1.0 : -1.0;
      EXPECT_NEAR(partition_function(m, ss),
                  std::pow(q - 1.0, n) + sign * (q - 1.0), 1e-9)
          << "n=" << n << " q=" << q;
    }
  }
}

TEST(PartitionFunction, IndependentSetsOfPathAreFibonacci) {
  // #IS(P_n) = F(n+2).
  for (int n : {1, 2, 3, 6, 9}) {
    const mrf::Mrf m =
        mrf::make_uniform_independent_set(graph::make_path(n));
    const StateSpace ss(n, 2);
    EXPECT_NEAR(partition_function(m, ss), fib(n + 2), 1e-9) << "n=" << n;
  }
}

TEST(PartitionFunction, IndependentSetsOfCycleAreLucas) {
  // #IS(C_n) = L(n).
  for (int n : {3, 4, 5, 8}) {
    const mrf::Mrf m =
        mrf::make_uniform_independent_set(graph::make_cycle(n));
    const StateSpace ss(n, 2);
    EXPECT_NEAR(partition_function(m, ss), lucas(n), 1e-9) << "n=" << n;
  }
}

TEST(PartitionFunction, HardcoreWeightsBySetSize) {
  // Path of 2: Z = 1 + 2 lambda.
  const double lambda = 1.7;
  const mrf::Mrf m = mrf::make_hardcore(graph::make_path(2), lambda);
  const StateSpace ss(2, 2);
  EXPECT_NEAR(partition_function(m, ss), 1.0 + 2.0 * lambda, 1e-12);
}

TEST(PartitionFunction, IsingAgreesWithDirectSum) {
  // Single edge: Z = 2 e^{beta} + 2 e^{-beta} (zero field).
  const double beta = 0.8;
  const mrf::Mrf m = mrf::make_ising(graph::make_path(2), beta);
  const StateSpace ss(2, 2);
  EXPECT_NEAR(partition_function(m, ss),
              2.0 * std::exp(beta) + 2.0 * std::exp(-beta), 1e-12);
}

TEST(GibbsDistribution, NormalizedAndSupportedOnFeasible) {
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_cycle(4), 3);
  const StateSpace ss(4, 3);
  const auto mu = gibbs_distribution(m, ss);
  double total = 0.0;
  mrf::Config x;
  for (std::int64_t i = 0; i < ss.size(); ++i) {
    total += mu[static_cast<std::size_t>(i)];
    ss.decode_into(i, x);
    EXPECT_EQ(mu[static_cast<std::size_t>(i)] > 0.0, m.feasible(x));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(GibbsDistribution, ThrowsWhenNoFeasibleConfig) {
  // Triangle with 2 colors has no proper coloring.
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_cycle(3), 2);
  const StateSpace ss(3, 2);
  EXPECT_THROW((void)gibbs_distribution(m, ss), std::invalid_argument);
}

TEST(GibbsDistribution, UniformOverSolutionsForHardConstraints) {
  const mrf::Mrf m = mrf::make_proper_coloring(graph::make_path(3), 3);
  const StateSpace ss(3, 3);
  const auto mu = gibbs_distribution(m, ss);
  const double expected = 1.0 / 12.0;  // q(q-1)^2 = 12 proper colorings
  for (std::int64_t i = 0; i < ss.size(); ++i) {
    const double p = mu[static_cast<std::size_t>(i)];
    EXPECT_TRUE(p == 0.0 || std::abs(p - expected) < 1e-12);
  }
}

}  // namespace
}  // namespace lsample::inference
