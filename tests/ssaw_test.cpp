// Strongly self-avoiding walks (§4.2.3).
#include "inference/ssaw.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace lsample::inference {
namespace {

TEST(Ssaw, PredicateMatchesDefinition) {
  const auto cycle = graph::make_cycle(5);
  EXPECT_TRUE(is_ssaw(*cycle, {0}));
  EXPECT_TRUE(is_ssaw(*cycle, {0, 1, 2}));
  EXPECT_TRUE(is_ssaw(*cycle, {0, 1, 2, 3}));
  // Length-4 walk on C5: endpoints 0 and 4 are adjacent -> chord.
  EXPECT_FALSE(is_ssaw(*cycle, {0, 1, 2, 3, 4}));
  // Not a path at all.
  EXPECT_FALSE(is_ssaw(*cycle, {0, 2}));
  // Repeated vertex.
  EXPECT_FALSE(is_ssaw(*cycle, {0, 1, 0}));
}

TEST(Ssaw, CountsOnPathFromEndpoint) {
  const auto g = graph::make_path(6);
  const auto counts = count_ssaws(*g, 0, 5);
  // Exactly one simple chord-free walk of each length along the path.
  for (int l = 0; l <= 5; ++l)
    EXPECT_EQ(counts[static_cast<std::size_t>(l)], 1) << "l=" << l;
}

TEST(Ssaw, CountsOnPathFromMiddle) {
  const auto g = graph::make_path(7);
  const auto counts = count_ssaws(*g, 3, 3);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);  // left or right
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 2);
}

TEST(Ssaw, CountsOnCycleStopBeforeClosing) {
  const auto g = graph::make_cycle(6);
  const auto counts = count_ssaws(*g, 0, 6);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 2);
  EXPECT_EQ(counts[4], 2);  // length n-2 still chord-free
  EXPECT_EQ(counts[5], 0);  // closing the cycle creates the chord
  EXPECT_EQ(counts[6], 0);
}

TEST(Ssaw, CompleteGraphHasOnlySingleSteps) {
  const auto g = graph::make_complete(5);
  const auto counts = count_ssaws(*g, 0, 4);
  EXPECT_EQ(counts[1], 4);
  EXPECT_EQ(counts[2], 0);  // every second step closes a triangle chord
  EXPECT_EQ(counts[3], 0);
}

TEST(Ssaw, StarFromLeafReachesOtherLeaves) {
  const auto g = graph::make_star(4);  // center 0, leaves 1..4
  const auto counts = count_ssaws(*g, 1, 3);
  EXPECT_EQ(counts[1], 1);  // to the center
  EXPECT_EQ(counts[2], 3);  // through the center to another leaf
  EXPECT_EQ(counts[3], 0);  // leaves are dead ends
}

TEST(Ssaw, SeriesMatchesGeometricOnCycle) {
  const auto g = graph::make_cycle(10);
  const double x = 0.25;  // 2/q with q = 8
  // 2 walks per length 1..8; series = 2 * sum_{l=1}^{8} x^{l-1}.
  double expected = 0.0;
  double p = 1.0;
  for (int l = 1; l <= 8; ++l) {
    expected += 2.0 * p;
    p *= x;
  }
  EXPECT_NEAR(ssaw_series(*g, 0, x, 9), expected, 1e-12);
}

TEST(Ssaw, SeriesBoundedByLemma412FixpointOnRegularGraphs) {
  // Lemma 4.12 caps Phi_(v0,u) by the fixpoint Delta/(q-2Delta+2) times
  // (1-2/q)^{Delta-1}; summed over Gamma(v0) and divided by the per-walk
  // prefactor (Delta/q)(1-2/q)^{Delta-1}, it implies that the bare SSAW
  // series S = sum over SSAWs of (2/q)^{l-1} obeys
  //   S <= q * Delta / (q - 2*Delta + 2)
  // in the regime 3*Delta < q <= 3.7*Delta + 3.  Verify on concrete graphs.
  util::Rng rng(5);
  for (int delta : {3, 4}) {
    const auto g = graph::make_random_regular(24, delta, rng);
    const double q = 3.5 * delta;
    const double x = 2.0 / q;
    const double series = ssaw_series(*g, 0, x, 14);
    const double fixpoint_bound = q * delta / (q - 2.0 * delta + 2.0);
    EXPECT_LE(series, fixpoint_bound + 1e-9) << "Delta=" << delta;
  }
}

TEST(Ssaw, ValidatesArguments) {
  const auto g = graph::make_path(3);
  EXPECT_THROW((void)count_ssaws(*g, 5, 3), std::invalid_argument);
  EXPECT_THROW((void)count_ssaws(*g, 0, 100), std::invalid_argument);
  EXPECT_THROW((void)is_ssaw(*g, {}), std::invalid_argument);
}

}  // namespace
}  // namespace lsample::inference
