// Structural checks of the §5.1 lower-bound construction.
#include "gadget/gadget.hpp"

#include <gtest/gtest.h>

#include "graph/properties.hpp"

namespace lsample::gadget {
namespace {

GadgetParams small_params() {
  GadgetParams p;
  p.n = 12;
  p.k = 2;
  p.delta = 6;
  return p;
}

TEST(Gadget, DegreesMatchConstruction) {
  util::Rng rng(3);
  const Gadget g = make_random_gadget(small_params(), rng);
  ASSERT_EQ(g.g->num_vertices(), 24);
  // Non-terminals have degree Delta, terminals Delta - 1.
  std::vector<char> is_terminal(24, 0);
  for (int w : g.wplus) is_terminal[static_cast<std::size_t>(w)] = 1;
  for (int w : g.wminus) is_terminal[static_cast<std::size_t>(w)] = 1;
  for (int v = 0; v < 24; ++v)
    EXPECT_EQ(g.g->degree(v), is_terminal[static_cast<std::size_t>(v)] ? 5 : 6)
        << "vertex " << v;
}

TEST(Gadget, IsBipartiteAcrossSides) {
  util::Rng rng(5);
  const Gadget g = make_random_gadget(small_params(), rng);
  // All edges go between V+ and V- (the U-matching joins U+ to U-).
  for (int e = 0; e < g.g->num_edges(); ++e) {
    const graph::Edge& ed = g.g->edge(e);
    const bool u_plus = ed.u < 12;
    const bool v_plus = ed.v < 12;
    EXPECT_NE(u_plus, v_plus);
  }
}

TEST(Gadget, IsConnected) {
  util::Rng rng(7);
  const Gadget g = make_random_gadget(small_params(), rng);
  EXPECT_TRUE(graph::is_connected(*g.g));
}

TEST(Gadget, RejectsBadParameters) {
  util::Rng rng(9);
  GadgetParams p;
  p.n = 4;
  p.k = 2;  // violates n > 2k
  p.delta = 6;
  EXPECT_THROW((void)make_random_gadget(p, rng), std::invalid_argument);
}

TEST(Phase, SignOfOccupationImbalance) {
  const std::vector<int> plus = {0, 1};
  const std::vector<int> minus = {2, 3};
  EXPECT_EQ(phase(plus, minus, {1, 1, 0, 0}), 1);
  EXPECT_EQ(phase(plus, minus, {0, 0, 1, 1}), -1);
  EXPECT_EQ(phase(plus, minus, {1, 0, 0, 1}), 0);
}

TEST(LiftedCycle, IsDeltaRegular) {
  util::Rng rng(11);
  GadgetParams p;
  p.n = 12;
  p.k = 2;  // gadget gets 2k = 4 terminals per side
  p.delta = 6;
  // Gadget must have 2k terminals per side for the lift; build with k' = 2k.
  GadgetParams blueprint = p;
  blueprint.k = 2 * p.k;
  const Gadget g = make_random_gadget(blueprint, rng);
  const LiftedCycle lifted = lift_on_cycle(g, 6);
  ASSERT_EQ(lifted.g->num_vertices(), 6 * 24);
  for (int v = 0; v < lifted.g->num_vertices(); ++v)
    EXPECT_EQ(lifted.g->degree(v), 6) << "vertex " << v;
  EXPECT_TRUE(graph::is_connected(*lifted.g));
}

TEST(LiftedCycle, DiameterScalesWithCycleLength) {
  util::Rng rng(13);
  GadgetParams blueprint;
  blueprint.n = 12;
  blueprint.k = 4;
  blueprint.delta = 6;
  const Gadget g = make_random_gadget(blueprint, rng);
  const LiftedCycle small = lift_on_cycle(g, 4);
  const LiftedCycle big = lift_on_cycle(g, 12);
  const int d_small = graph::diameter_lower_bound(*small.g);
  const int d_big = graph::diameter_lower_bound(*big.g);
  EXPECT_GT(d_big, d_small);
  EXPECT_GE(d_big, 12 / 2);  // at least m/2 hops around the cycle
}

TEST(LiftedCycle, PhaseVectorAndCutValue) {
  util::Rng rng(17);
  GadgetParams blueprint;
  blueprint.n = 12;
  blueprint.k = 4;
  blueprint.delta = 6;
  const Gadget g = make_random_gadget(blueprint, rng);
  const LiftedCycle lifted = lift_on_cycle(g, 4);
  // Occupy V+ of even copies and V- of odd copies: alternating phases.
  mrf::Config x(static_cast<std::size_t>(lifted.g->num_vertices()), 0);
  for (int c = 0; c < 4; ++c) {
    const auto& side = c % 2 == 0 ? lifted.vplus[static_cast<std::size_t>(c)]
                                  : lifted.vminus[static_cast<std::size_t>(c)];
    for (int v : side) x[static_cast<std::size_t>(v)] = 1;
  }
  const auto phases = phase_vector(lifted, x);
  EXPECT_EQ(phases, (std::vector<int>{1, -1, 1, -1}));
  EXPECT_EQ(cut_value(phases), 4);  // maximum cut of C4
  EXPECT_EQ(cut_value({1, 1, 1, 1}), 0);
  EXPECT_EQ(cut_value({1, 0, -1, 0}), 0);  // ties break no edges
  EXPECT_EQ(cut_value({1, 1, -1, -1}), 2);
}

TEST(LiftedCycle, RejectsOddCycles) {
  util::Rng rng(19);
  GadgetParams blueprint;
  blueprint.n = 12;
  blueprint.k = 4;
  blueprint.delta = 6;
  const Gadget g = make_random_gadget(blueprint, rng);
  EXPECT_THROW((void)lift_on_cycle(g, 5), std::invalid_argument);
}

}  // namespace
}  // namespace lsample::gadget
