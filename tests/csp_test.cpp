// Factor graphs: construction, semantics, conflict graphs, and equivalence
// of the MRF-as-CSP embedding.
#include "csp/factor_graph.hpp"

#include <gtest/gtest.h>

#include "csp/csp_exact.hpp"
#include "csp/csp_models.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "inference/exact.hpp"
#include "mrf/models.hpp"

namespace lsample::csp {
namespace {

TEST(FactorGraph, ValidatesConstruction) {
  FactorGraph fg(3, 2);
  EXPECT_THROW((void)fg.add_constraint({0, 0}, {1, 1, 1, 1}),
               std::invalid_argument);  // duplicate scope vertex
  EXPECT_THROW((void)fg.add_constraint({0, 5}, {1, 1, 1, 1}),
               std::invalid_argument);  // out of range
  EXPECT_THROW((void)fg.add_constraint({0, 1}, {1, 1, 1}),
               std::invalid_argument);  // wrong table size
  EXPECT_THROW((void)fg.add_constraint({0, 1}, {0, 0, 0, 0}),
               std::invalid_argument);  // identically zero
}

TEST(FactorGraph, TableValueUsesPositionalIndex) {
  FactorGraph fg(2, 3);
  // f(x0, x1) = 3*x1 + x0 + 1 as a table.
  std::vector<double> table(9);
  for (int x1 = 0; x1 < 3; ++x1)
    for (int x0 = 0; x0 < 3; ++x0)
      table[static_cast<std::size_t>(x0 + 3 * x1)] = 3.0 * x1 + x0 + 1.0;
  const int c = fg.add_constraint({0, 1}, table);
  EXPECT_DOUBLE_EQ(fg.table_value(c, {2, 1}), 3.0 + 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(fg.table_value(c, {0, 2}), 6.0 + 0.0 + 1.0);
}

TEST(FactorGraph, MarginalWeightsMatchDefinition) {
  const auto g = graph::make_path(3);
  const FactorGraph fg = make_dominating_set(*g, 2.0);
  // All-zero except the query vertex: middle vertex must be chosen to cover
  // everyone, so its marginal weight at 0 is 0.
  std::vector<double> w;
  fg.marginal_weights(1, {0, 0, 0}, w);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[1], 2.0);
}

TEST(FactorGraph, ConflictGraphConnectsSharedScopes) {
  FactorGraph fg(4, 2);
  fg.add_constraint({0, 1, 2}, std::vector<double>(8, 1.0));
  fg.add_constraint({2, 3}, std::vector<double>(4, 1.0));
  const auto cg = fg.make_conflict_graph();
  EXPECT_TRUE(cg->has_edge(0, 1));
  EXPECT_TRUE(cg->has_edge(0, 2));
  EXPECT_TRUE(cg->has_edge(1, 2));
  EXPECT_TRUE(cg->has_edge(2, 3));
  EXPECT_FALSE(cg->has_edge(0, 3));
  EXPECT_EQ(cg->num_edges(), 4);
}

TEST(DominatingSet, FeasibilityMatchesDefinition) {
  const auto g = graph::make_path(4);
  const FactorGraph fg = make_dominating_set(*g, 1.0);
  EXPECT_TRUE(fg.feasible({0, 1, 1, 0}));
  EXPECT_TRUE(fg.feasible({1, 0, 0, 1}));  // endpoints dominate 0-1 and 2-3
  EXPECT_TRUE(fg.feasible({0, 1, 0, 1}));
  EXPECT_FALSE(fg.feasible({1, 0, 0, 0}));  // vertex 3 uncovered
  EXPECT_FALSE(fg.feasible({0, 0, 0, 0}));
}

TEST(DominatingSet, GibbsWeightsBySetSize) {
  const auto g = graph::make_path(3);
  const double lambda = 2.0;
  const FactorGraph fg = make_dominating_set(*g, lambda);
  const inference::StateSpace ss(3, 2);
  const auto mu = csp_gibbs_distribution(fg, ss);
  // Dominating sets of P3: {1}, {0,1}, {1,2}, {0,2}, {0,1,2}.
  // Weights: 2, 4, 4, 4, 8 -> Z = 22.
  EXPECT_NEAR(mu[static_cast<std::size_t>(ss.encode({0, 1, 0}))], 2.0 / 22.0,
              1e-12);
  EXPECT_NEAR(mu[static_cast<std::size_t>(ss.encode({1, 0, 1}))], 4.0 / 22.0,
              1e-12);
  EXPECT_NEAR(mu[static_cast<std::size_t>(ss.encode({1, 1, 1}))], 8.0 / 22.0,
              1e-12);
  EXPECT_EQ(mu[static_cast<std::size_t>(ss.encode({1, 0, 0}))], 0.0);
}

TEST(HypergraphNae, ExcludesMonochromaticHyperedges) {
  const FactorGraph fg = make_hypergraph_nae(4, 2, {{0, 1, 2}, {1, 2, 3}});
  EXPECT_FALSE(fg.feasible({0, 0, 0, 1}));
  EXPECT_FALSE(fg.feasible({1, 0, 0, 0}));  // second edge monochromatic
  EXPECT_TRUE(fg.feasible({0, 1, 0, 1}));
}

TEST(HypergraphIndependentSet, ExcludesFullHyperedges) {
  const FactorGraph fg =
      make_hypergraph_independent_set(4, {{0, 1, 2}}, 1.5);
  EXPECT_FALSE(fg.feasible({1, 1, 1, 0}));
  EXPECT_TRUE(fg.feasible({1, 1, 0, 1}));
}

TEST(MrfAsCsp, GibbsDistributionsCoincide) {
  const auto g = graph::make_cycle(4);
  for (const mrf::Mrf& m :
       {mrf::make_proper_coloring(g, 3), mrf::make_hardcore(g, 1.7),
        mrf::make_ising(g, 0.4, 0.2)}) {
    const FactorGraph fg = make_mrf_as_csp(m);
    const inference::StateSpace ss(m.n(), m.q());
    const auto mu_mrf = inference::gibbs_distribution(m, ss);
    const auto mu_csp = csp_gibbs_distribution(fg, ss);
    for (std::int64_t i = 0; i < ss.size(); ++i)
      EXPECT_NEAR(mu_mrf[static_cast<std::size_t>(i)],
                  mu_csp[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(ConstraintPassProb, BinaryConstraintMatchesMrfEdgeFilter) {
  const auto g = graph::make_path(2);
  const mrf::Mrf m = mrf::make_ising(g, 0.8);
  const FactorGraph fg = make_mrf_as_csp(m);
  for (int su = 0; su < 2; ++su)
    for (int sv = 0; sv < 2; ++sv)
      for (int xu = 0; xu < 2; ++xu)
        for (int xv = 0; xv < 2; ++xv) {
          const Config sigma = {su, sv};
          const Config x = {xu, xv};
          EXPECT_NEAR(fg.constraint_pass_prob(0, sigma, x),
                      m.edge_pass_prob(0, su, sv, xu, xv), 1e-12);
        }
}

}  // namespace
}  // namespace lsample::csp
