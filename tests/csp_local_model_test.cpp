// The CSP LocalMetropolis node program over the conflict graph must
// reproduce the reference CSP chain bit for bit.
#include "local/csp_node_programs.hpp"

#include <gtest/gtest.h>

#include "csp/csp_models.hpp"
#include "graph/generators.hpp"

namespace lsample::local {
namespace {

TEST(CspLocalMetropolisNetwork, MatchesReferenceOnDominatingSet) {
  const auto g = graph::make_cycle(10);
  const csp::FactorGraph fg = csp::make_dominating_set(*g, 1.3);
  const csp::Config x0(10, 1);
  for (std::uint64_t seed : {3ull, 17ull}) {
    Network net = make_csp_local_metropolis_network(fg, x0, seed);
    csp::CspLocalMetropolisChain chain(fg, seed);
    csp::Config x = x0;
    const int rounds = 30;
    net.run_rounds(rounds);
    for (int t = 0; t < rounds - 1; ++t) chain.step(x, t);
    EXPECT_EQ(net.outputs(), x) << "seed " << seed;
  }
}

TEST(CspLocalMetropolisNetwork, MatchesReferenceOnHypergraphNae) {
  const csp::FactorGraph fg =
      csp::make_hypergraph_nae(6, 3, {{0, 1, 2}, {2, 3, 4}, {4, 5, 0}});
  const csp::Config x0 = {0, 1, 2, 0, 1, 2};
  Network net = make_csp_local_metropolis_network(fg, x0, 9);
  csp::CspLocalMetropolisChain chain(fg, 9);
  csp::Config x = x0;
  net.run_rounds(40);
  for (int t = 0; t < 39; ++t) chain.step(x, t);
  EXPECT_EQ(net.outputs(), x);
}

TEST(CspLocalMetropolisNetwork, MatchesReferenceOnGridDominatingSet) {
  const auto g = graph::make_grid(4, 4);
  const csp::FactorGraph fg = csp::make_dominating_set(*g, 0.8);
  const csp::Config x0(16, 1);
  Network net = make_csp_local_metropolis_network(fg, x0, 21);
  csp::CspLocalMetropolisChain chain(fg, 21);
  csp::Config x = x0;
  net.run_rounds(25);
  for (int t = 0; t < 24; ++t) chain.step(x, t);
  EXPECT_EQ(net.outputs(), x);
}

TEST(CspLocalMetropolisNetwork, MessageSizeIsTwoSpins) {
  const auto g = graph::make_cycle(8);
  const csp::FactorGraph fg = csp::make_dominating_set(*g, 1.0);
  const csp::Config x0(8, 1);
  Network net = make_csp_local_metropolis_network(fg, x0, 2);
  net.run_rounds(5);
  // q = 2 -> 2 bits per message.
  EXPECT_EQ(net.stats().bits, net.stats().messages * 2);
  // Conflict graph of a cycle's dominating-set CSP connects each vertex to
  // everything within distance 2.
  EXPECT_EQ(net.g().degree(0), 4);
}

}  // namespace
}  // namespace lsample::local
