#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace lsample::util {
namespace {

TEST(CounterRng, IsDeterministic) {
  const CounterRng a(42);
  const CounterRng b(42);
  for (int t = 0; t < 100; ++t)
    EXPECT_EQ(a.bits(RngDomain::edge_coin, 7, t), b.bits(RngDomain::edge_coin, 7, t));
}

TEST(CounterRng, SeedsProduceDifferentStreams) {
  const CounterRng a(1);
  const CounterRng b(2);
  int same = 0;
  for (int t = 0; t < 100; ++t)
    if (a.bits(RngDomain::aux, 0, t) == b.bits(RngDomain::aux, 0, t)) ++same;
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, DomainsAreSeparated) {
  const CounterRng rng(5);
  int same = 0;
  for (int t = 0; t < 100; ++t)
    if (rng.bits(RngDomain::luby_priority, 3, t) ==
        rng.bits(RngDomain::vertex_update, 3, t))
      ++same;
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, StreamsAreSeparated) {
  const CounterRng rng(5);
  int same = 0;
  for (int t = 0; t < 100; ++t)
    if (rng.bits(RngDomain::edge_coin, 0, t) ==
        rng.bits(RngDomain::edge_coin, 1, t))
      ++same;
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, U01InUnitInterval) {
  const CounterRng rng(9);
  for (int t = 0; t < 1000; ++t) {
    const double u = rng.u01(RngDomain::aux, 0, t);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CounterRng, U01IsRoughlyUniform) {
  const CounterRng rng(13);
  const int buckets = 10;
  const int draws = 100000;
  std::vector<int> counts(buckets, 0);
  for (int t = 0; t < draws; ++t) {
    const double u = rng.u01(RngDomain::aux, 1, t);
    ++counts[static_cast<std::size_t>(u * buckets)];
  }
  // Chi-square with 9 dof; 99.9% quantile ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(draws) / buckets;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 27.9);
}

TEST(CounterRng, UniformIntCoversRange) {
  const CounterRng rng(17);
  std::set<int> seen;
  for (int t = 0; t < 1000; ++t)
    seen.insert(rng.uniform_int(RngDomain::global_choice, 0, t, 0, 5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Categorical, PicksOnlyPositiveWeights) {
  const std::vector<double> w = {0.0, 2.0, 0.0, 1.0};
  for (double u = 0.005; u < 1.0; u += 0.01) {
    const int c = categorical(w, u);
    EXPECT_TRUE(c == 1 || c == 3);
  }
}

TEST(Categorical, MatchesWeightProportions) {
  const std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  const CounterRng rng(23);
  const int draws = 40000;
  for (int t = 0; t < draws; ++t)
    if (categorical(w, rng.u01(RngDomain::aux, 2, t)) == 1) ++ones;
  EXPECT_NEAR(static_cast<double>(ones) / draws, 0.75, 0.02);
}

TEST(Categorical, AllZeroReturnsMinusOne) {
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(categorical(w, 0.5), -1);
}

TEST(Categorical, BoundaryUBelongsToLastPositive) {
  const std::vector<double> w = {1.0, 1.0};
  EXPECT_EQ(categorical(w, 0.9999999999999999), 1);
  EXPECT_EQ(categorical(w, 0.0), 0);
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(7);
  Rng b(7);
  Rng c(8);
  bool all_equal = true;
  bool any_equal_c = false;
  for (int i = 0; i < 50; ++i) {
    const auto av = a();
    if (av != b()) all_equal = false;
    if (av == c()) any_equal_c = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_FALSE(any_equal_c);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

}  // namespace
}  // namespace lsample::util
