// The LOCAL-model simulator must reproduce the reference chains bit for bit,
// and its message accounting must match the protocol structure.
#include "local/network.hpp"

#include <gtest/gtest.h>

#include "chains/chain.hpp"
#include "chains/init.hpp"
#include "chains/local_metropolis.hpp"
#include "chains/luby_glauber.hpp"
#include "graph/generators.hpp"
#include "local/node_programs.hpp"
#include "mrf/models.hpp"

namespace lsample::local {
namespace {

TEST(SpinBits, CeilLog2) {
  EXPECT_EQ(spin_bits(2), 1);
  EXPECT_EQ(spin_bits(3), 2);
  EXPECT_EQ(spin_bits(4), 2);
  EXPECT_EQ(spin_bits(5), 3);
  EXPECT_EQ(spin_bits(100), 7);
}

TEST(LubyGlauberNetwork, MatchesReferenceChainExactly) {
  util::Rng grng(3);
  const auto g = graph::make_random_regular(18, 4, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 9);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    Network net = make_luby_glauber_network(m, x0, seed);
    chains::LubyGlauberChain chain(m, seed);
    mrf::Config x = x0;
    // R simulated rounds complete R-1 chain steps.
    const int rounds = 25;
    net.run_rounds(rounds);
    chains::run(chain, x, 0, rounds - 1);
    EXPECT_EQ(net.outputs(), x) << "seed " << seed;
  }
}

TEST(LocalMetropolisNetwork, MatchesReferenceChainExactly) {
  util::Rng grng(5);
  const auto g = graph::make_erdos_renyi(16, 0.25, grng);
  const mrf::Mrf m = mrf::make_proper_coloring(g, g->max_degree() + 3);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  for (std::uint64_t seed : {2ull, 11ull, 77ull}) {
    Network net = make_local_metropolis_network(m, x0, seed);
    chains::LocalMetropolisChain chain(m, seed);
    mrf::Config x = x0;
    const int rounds = 25;
    net.run_rounds(rounds);
    chains::run(chain, x, 0, rounds - 1);
    EXPECT_EQ(net.outputs(), x) << "seed " << seed;
  }
}

TEST(LocalMetropolisNetwork, MatchesOnSoftModel) {
  const auto g = graph::make_cycle(10);
  const mrf::Mrf m = mrf::make_ising(g, 0.6, 0.1);
  const mrf::Config x0 = chains::constant_config(m, 0);
  Network net = make_local_metropolis_network(m, x0, 9);
  chains::LocalMetropolisChain chain(m, 9);
  mrf::Config x = x0;
  net.run_rounds(40);
  chains::run(chain, x, 0, 39);
  EXPECT_EQ(net.outputs(), x);
}

TEST(LubyGlauberNetwork, MatchesOnMultigraph) {
  // Parallel edges carry independent coins; the node programs must handle
  // several ports to the same neighbor.
  auto g = std::make_shared<graph::Graph>(4);
  g->add_edge(0, 1);
  g->add_edge(0, 1);
  g->add_edge(1, 2);
  g->add_edge(2, 3);
  g->add_edge(3, 0);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 6);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  Network net = make_local_metropolis_network(m, x0, 21);
  chains::LocalMetropolisChain chain(m, 21);
  mrf::Config x = x0;
  net.run_rounds(30);
  chains::run(chain, x, 0, 29);
  EXPECT_EQ(net.outputs(), x);
}

TEST(Network, MessageAccountingMatchesProtocol) {
  const auto g = graph::make_cycle(8);  // 8 edges, all degrees 2
  const mrf::Mrf m = mrf::make_proper_coloring(g, 4);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  Network net = make_local_metropolis_network(m, x0, 1);
  const int rounds = 10;
  net.run_rounds(rounds);
  const auto& stats = net.stats();
  EXPECT_EQ(stats.rounds, rounds);
  // Every vertex sends one message per incident edge per round.
  EXPECT_EQ(stats.messages, static_cast<std::int64_t>(rounds) * 2 * 8);
  // LocalMetropolis messages carry 2 spins of ceil(log2 q) = 2 bits each.
  EXPECT_EQ(stats.bits, stats.messages * 4);
}

TEST(Network, LubyGlauberMessageBits) {
  const auto g = graph::make_path(5);
  const mrf::Mrf m = mrf::make_proper_coloring(g, 5);
  const mrf::Config x0 = chains::greedy_feasible_config(m);
  Network net = make_luby_glauber_network(m, x0, 1);
  net.run_rounds(3);
  // Each message: 64-bit priority + 3-bit spin.
  EXPECT_EQ(net.stats().bits, net.stats().messages * (64 + 3));
}

TEST(Network, OutputsAreValidSpins) {
  const auto g = graph::make_grid(4, 4);
  const mrf::Mrf m = mrf::make_hardcore(g, 0.8);
  const mrf::Config x0 = chains::constant_config(m, 0);
  Network net = make_local_metropolis_network(m, x0, 33);
  net.run_rounds(50);
  for (int s : net.outputs()) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 2);
  }
}

}  // namespace
}  // namespace lsample::local
